package parallel

// Chaos layer: the distributed pool under worker churn. Workers dial the
// coordinator through faultnet proxies; tests kill (sever) or blackhole a
// worker mid-job, let a replacement reclaim the slot, and assert the
// acceptance contract — Score, FirstMove, Sequence, Steps, Jobs and
// WorkUnits bit-identical to the undisturbed solo RunWall run with the
// same seed, on every domain. Determinism under churn is the whole point:
// re-granted candidates and re-issued rollouts replay the same
// coordinate-keyed rng streams, and every duplicate the churn can
// manufacture is shed by the epoch/key guards. Run with -race in CI.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/morpion"
	"repro/internal/mpi"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// chaosWorker is one worker serving a pool through a fault proxy.
type chaosWorker struct {
	proxy *faultnet.Proxy
	done  chan struct{}
}

// startChaosWorker dials the pool through a fresh proxy and serves the
// assigned ranks on a background goroutine.
func startChaosWorker(t *testing.T, addr string) *chaosWorker {
	t.Helper()
	proxy, err := faultnet.NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpi.DialWorker(proxy.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	cw := &chaosWorker{proxy: proxy, done: make(chan struct{})}
	go func() {
		defer close(cw.done)
		// A severed worker returns without error (its Run ends on the
		// reader failure); only setup problems are reported.
		if _, err := ServeWorker(w); err != nil {
			t.Errorf("chaos worker: %v", err)
		}
	}()
	return cw
}

// startReplacementWorker dials the coordinator directly, retrying while
// the lost slot is still being released, and serves until shutdown. It
// runs from kill callbacks (progress hooks, timers) — goroutines where
// t.Fatal is illegal — so unrecoverable setup failures panic instead.
func startReplacementWorker(t *testing.T, addr string) *chaosWorker {
	deadline := time.Now().Add(15 * time.Second)
	for {
		w, err := mpi.DialWorker(addr, "")
		if err == nil {
			cw := &chaosWorker{done: make(chan struct{})}
			go func() {
				defer close(cw.done)
				if _, err := ServeWorker(w); err != nil {
					t.Errorf("replacement worker: %v", err)
				}
			}()
			return cw
		}
		if time.Now().After(deadline) {
			panic("chaos replacement worker could not join: " + err.Error())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosRun runs cfg on a 2-worker distributed pool, invokes kill once
// (from the first progress callback when the config plays multiple steps,
// or after a fixed delay in first-move mode), starts a replacement
// worker, and returns the result plus the pool metrics.
func chaosRun(t *testing.T, cfg Config, killWorker int) (Result, PoolMetrics) {
	t.Helper()
	// The tight evaluation batch shape only matters to evaluator configs
	// (uniform jobs never touch the batcher): batch 2 so size flushes happen
	// under few concurrent rollouts, and a short deadline so a worker
	// hosting a single client is not serialized on the flush timer.
	pool, err := NewNetPool(
		PoolConfig{
			Slots: 2, Medians: 2, Clients: 3,
			EvalBatch: 2, EvalFlush: 100 * time.Microsecond,
		},
		NetPoolConfig{Listen: "127.0.0.1:0", Workers: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	workers := []*chaosWorker{
		startChaosWorker(t, pool.WorkerAddr()),
		startChaosWorker(t, pool.WorkerAddr()),
	}

	var once sync.Once
	kill := func() {
		once.Do(func() {
			workers[killWorker].proxy.Sever()
			startReplacementWorker(t, pool.WorkerAddr())
		})
	}

	var progress func(Progress)
	if cfg.FirstMoveOnly {
		// A single root step never fires progress; kill mid-step instead.
		timer := time.AfterFunc(150*time.Millisecond, kill)
		defer timer.Stop()
	} else {
		progress = func(p Progress) {
			if p.Steps == 1 {
				kill()
			}
		}
	}

	res, err := pool.RunJob(0, cfg, progress)
	if err != nil {
		t.Fatal(err)
	}
	kill() // first-move jobs that beat the timer still exercise the sever
	m := pool.Metrics()
	pool.Shutdown()
	for _, w := range workers {
		w.proxy.Close()
		<-w.done
	}
	return res, m
}

// TestChaosKillEquivalence kills one of two workers mid-job — medians and
// a client with it — lets a replacement rejoin, and requires the result
// bit-identical to the undisturbed solo run, per domain.
func TestChaosKillEquivalence(t *testing.T) {
	cfgs := map[string]Config{
		"morpion":  {Level: 2, Root: morpion.New(morpion.Var4D), Seed: 11, Memorize: true, FirstMoveOnly: true},
		"samegame": {Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true},
		"sudoku":   {Level: 2, Root: sudoku.New(2), Seed: 7},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Worker 0 hosts both medians and a client: killing it loses
			// granted candidates (scheduler re-grant) and a rollout
			// executor (dispatcher repair) at once.
			res, m := chaosRun(t, cfg, 0)
			assertSameResult(t, "chaos kill vs solo", res, solo)
			if m.WorkersLost < 1 {
				t.Fatalf("no worker loss recorded: %+v", m)
			}
			if m.WorkersRejoined < 1 {
				t.Fatalf("no rejoin recorded: %+v", m)
			}
			if !cfg.FirstMoveOnly {
				// The kill landed mid-job with grants outstanding on the
				// dead medians, so work must have been re-granted — and
				// the job must have seen it.
				if m.Regranted < 1 || res.Regranted < 1 {
					t.Fatalf("no re-grants recorded (pool %d, job %d)", m.Regranted, res.Regranted)
				}
			}
		})
	}
}

// TestChaosKillClientsReissue kills the worker hosting only clients: the
// surviving medians must re-issue the rollouts they had in flight on the
// dead clients and the job still matches solo bit-for-bit.
func TestChaosKillClientsReissue(t *testing.T) {
	cfg := Config{Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true}
	solo, err := RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1 hosts the last two client ranks only.
	res, m := chaosRun(t, cfg, 1)
	assertSameResult(t, "chaos client kill vs solo", res, solo)
	if m.WorkersLost < 1 || m.WorkersRejoined < 1 {
		t.Fatalf("churn not recorded: %+v", m)
	}
}

// TestChaosBlackholeHeartbeat wedges a worker's stream without closing it
// — only the heartbeat can notice — and requires detection, replacement
// and a bit-identical result.
func TestChaosBlackholeHeartbeat(t *testing.T) {
	cfg := Config{Level: 2, Root: sudoku.New(2), Seed: 7}
	solo, err := RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pool, err := NewNetPool(
		PoolConfig{Slots: 1, Medians: 2, Clients: 3},
		NetPoolConfig{
			Listen: "127.0.0.1:0", Workers: 2,
			Heartbeat: 25 * time.Millisecond, HeartbeatTimeout: 100 * time.Millisecond,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	workers := []*chaosWorker{
		startChaosWorker(t, pool.WorkerAddr()),
		startChaosWorker(t, pool.WorkerAddr()),
	}

	var once sync.Once
	res, err := pool.RunJob(0, cfg, func(p Progress) {
		once.Do(func() {
			workers[0].proxy.Blackhole(true)
			startReplacementWorker(t, pool.WorkerAddr())
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != solo.Score || res.Steps != solo.Steps ||
		res.Jobs != solo.Jobs || res.WorkUnits != solo.WorkUnits {
		t.Fatalf("blackhole run diverged: %+v vs solo %+v", res, solo)
	}
	m := pool.Metrics()
	if m.WorkersLost < 1 {
		t.Fatalf("heartbeat never declared the blackholed worker lost: %+v", m)
	}
	pool.Shutdown()
	for _, w := range workers {
		w.proxy.Close()
		<-w.done
	}
}

// TestChaosLateJoinDuringCancel pins the edge where a job is cancelled
// while no worker has ever joined: the cancellation must drain cleanly
// (nothing is granted, everything queued is abandoned), and a worker
// joining afterwards serves the next job normally.
func TestChaosLateJoinDuringCancel(t *testing.T) {
	pool, err := NewNetPool(
		PoolConfig{Slots: 1, Medians: 1, Clients: 2},
		NetPoolConfig{Listen: "127.0.0.1:0", Workers: 1},
	)
	if err != nil {
		t.Fatal(err)
	}

	h, err := pool.StartJob(0, Config{Level: 2, Root: sudoku.New(2), Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the first step's offers queue
	pool.CancelJob(0)
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("workerless cancellation did not mark the job stopped")
	}

	// The late worker joins a pool whose only job is long gone; the next
	// job must still match its solo twin.
	wait := startNetWorkers(t, pool.WorkerAddr(), 1)
	cfg := Config{Level: 2, Root: sudoku.New(2), Seed: 7}
	after, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-cancel late-join job", after, solo)

	pool.Shutdown()
	wait()
}

// waitPoolCond polls the pool's metrics until cond holds.
func waitPoolCond(t *testing.T, pool *Pool, what string, cond func(PoolMetrics) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(pool.Metrics()) {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s: %+v", what, pool.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosDegradeNoReplacement is the graceful-degradation acceptance
// test: one of two workers is killed mid-job and NO replacement ever
// dials in. After the grace window the pool abandons the worker and
// re-maps its rank range onto the survivor; the in-flight job and a
// second job run entirely on the shrunken world must both be
// bit-identical to the undisturbed solo run, per domain.
func TestChaosDegradeNoReplacement(t *testing.T) {
	cfgs := map[string]Config{
		"morpion":  {Level: 2, Root: morpion.New(morpion.Var4D), Seed: 11, Memorize: true, FirstMoveOnly: true},
		"samegame": {Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true},
		"sudoku":   {Level: 2, Root: sudoku.New(2), Seed: 7},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := NewNetPool(
				PoolConfig{Slots: 2, Medians: 2, Clients: 3},
				NetPoolConfig{
					Listen: "127.0.0.1:0", Workers: 2,
					Degrade: true, MinWorkers: 1,
					ReplaceGrace: 150 * time.Millisecond,
				},
			)
			if err != nil {
				t.Fatal(err)
			}
			workers := []*chaosWorker{
				startChaosWorker(t, pool.WorkerAddr()),
				startChaosWorker(t, pool.WorkerAddr()),
			}

			// Worker 1 hosts the last two client ranks only, so the
			// survivor keeps both medians and one client: the smallest
			// world that can still finish any job.
			var once sync.Once
			kill := func() { once.Do(func() { workers[1].proxy.Sever() }) }
			var progress func(Progress)
			if cfg.FirstMoveOnly {
				timer := time.AfterFunc(150*time.Millisecond, kill)
				defer timer.Stop()
			} else {
				progress = func(p Progress) {
					if p.Steps == 1 {
						kill()
					}
				}
			}

			res, err := pool.RunJob(0, cfg, progress)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "degraded kill vs solo", res, solo)
			kill() // first-move jobs that beat the timer still degrade the pool

			// With no replacement the grace window must expire into an
			// abandonment, never a rejoin.
			waitPoolCond(t, pool, "worker abandonment", func(m PoolMetrics) bool {
				return m.WorkersAbandoned >= 1 && m.Degraded
			})

			// A job started on the already-shrunken world: same answer,
			// and the degraded flag is now deterministic.
			res2, err := pool.RunJob(0, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "fully degraded job vs solo", res2, solo)
			if !res2.Degraded {
				t.Fatal("job on a degraded pool did not report Degraded")
			}
			m := pool.Metrics()
			if m.WorkersRejoined != 0 {
				t.Fatalf("phantom rejoin with no replacement: %+v", m)
			}
			if m.Failed {
				t.Fatalf("pool above its floor reported failed: %+v", m)
			}

			pool.Shutdown()
			for _, w := range workers {
				w.proxy.Close()
				<-w.done
			}
		})
	}
}

// TestChaosDegradeFailFast pins the bounded-loss escalation: with Degrade
// off, an abandonment fails the running job promptly with ErrDegraded
// (no stall), refuses new jobs, and a worker rejoining after all revives
// the pool to full, bit-identical service.
func TestChaosDegradeFailFast(t *testing.T) {
	cfg := Config{Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true}
	solo, err := RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewNetPool(
		PoolConfig{Slots: 1, Medians: 2, Clients: 3},
		NetPoolConfig{
			Listen: "127.0.0.1:0", Workers: 2,
			ReplaceGrace: 100 * time.Millisecond, // Degrade off: any abandonment fails the pool
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	workers := []*chaosWorker{
		startChaosWorker(t, pool.WorkerAddr()),
		startChaosWorker(t, pool.WorkerAddr()),
	}

	var once sync.Once
	res, err := pool.RunJob(0, cfg, func(p Progress) {
		if p.Steps == 1 {
			once.Do(func() { workers[1].proxy.Sever() })
		}
	})
	if err != ErrDegraded {
		t.Fatalf("fail-fast job returned (%+v, %v), want ErrDegraded", res, err)
	}
	if !res.Degraded {
		t.Fatal("failed job did not report Degraded")
	}
	if _, err := pool.RunJob(0, cfg, nil); err != ErrDegraded {
		t.Fatalf("job on failed pool returned %v, want ErrDegraded", err)
	}
	m := pool.Metrics()
	if !m.Failed || m.WorkersAbandoned < 1 {
		t.Fatalf("fail-fast not reflected in metrics: %+v", m)
	}

	// Capacity returns: the abandoned range is revived and service is
	// restored in full — the same job now matches solo exactly.
	replacement := startReplacementWorker(t, pool.WorkerAddr())
	waitPoolCond(t, pool, "pool revival", func(m PoolMetrics) bool {
		return !m.Failed && !m.Degraded && m.WorkersRejoined >= 1
	})
	after, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "revived pool vs solo", after, solo)
	if after.Degraded {
		t.Fatal("revived pool still reports Degraded")
	}

	pool.Shutdown()
	for _, w := range workers {
		w.proxy.Close()
		<-w.done
	}
	<-replacement.done
}
