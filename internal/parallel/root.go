package parallel

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
)

// runRoot plays the top-level game. The default scheduler is demand-driven
// (runRootPull); Config.Static selects the paper's cyclic push scheduler
// (runRootStatic). Both play the exact same game — client scores are keyed
// by logical job coordinates, not by executing rank — so the choice only
// affects timing.
func runRoot(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	switch {
	case cfg.Static:
		runRootStatic(c, lay, cfg, res)
	case cfg.speculate() > 0:
		runRootAsync(c, lay, cfg, res)
	default:
		runRootPull(c, lay, cfg, res)
	}
	// Tear down every other process, as mpirun would at the end of a run.
	for r := 0; r < c.Size(); r++ {
		if mpi.Rank(r) != c.Rank() {
			c.Send(mpi.Rank(r), tagShutdown, nil)
		}
	}
}

// argmax returns the index of the highest score; ties go to the first-seen
// move, matching the sequential search's argmax.
func argmax(scores []float64) int {
	best := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[best] {
			best = i
		}
	}
	return best
}

// runRootPull is the demand-driven root scheduler. Every step, the root
// offers one candidate position per legal move to its work queue; idle
// medians pull them with (q) work requests and are answered with (g)
// grants. Grants self-balance: a 2×-slower median simply requests half as
// often, instead of stalling the whole step as it does under the static
// cyclic order. Scores come back tagged with their candidate index, so no
// pairing bookkeeping is needed.
//
//	1 while not end of game
//	2   offer one child position per possible move to the work queue
//	3   while scores missing
//	4     on work request: grant the oldest queued child (or queue the median)
//	5     on score: record it against its candidate index
//	6   position = play(move with best score)
//	7 return score
//
// A StopAfter budget cancels mid-step: queued candidates are abandoned,
// already-granted ones are drained (line 5 keeps running) before returning.
func runRootPull(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	st := cfg.Root.Clone()
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State // this step's shipped positions, by move index
	var scores []float64

	src := mpi.NewPullSource(c, tagPosition)
	src.Granted = func(to mpi.Rank) { cfg.trace("g", c.Rank(), to, c.Now()) }

	for step := 0; ; step++ {
		stepStart := c.Now()
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			break
		}
		if cfg.stopDue(c) {
			res.Stopped = true
			break
		}

		// Offer every candidate of the step (line 2). Medians whose
		// requests queued up during the previous step are granted
		// immediately; the rest of the queue drains on demand. Shipped
		// positions recycle last step's states through the free list.
		shipped = shipped[:0]
		scores = scores[:0]
		for i, m := range moves {
			child := pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(m)
			c.Work(1)
			shipped = append(shipped, child)
			scores = append(scores, 0)
			src.Offer(candidate{Step: step, Cand: i, Par: -1, State: child})
		}

		// Serve requests and gather scores (lines 3–5) until every
		// non-abandoned candidate is scored.
		want := len(moves)
		got := 0
		for got < want {
			msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
			switch msg.Tag {
			case tagWorkReq:
				src.Request(msg.From)
			case tagScore:
				sc := msg.Payload.(stepScore)
				scores[sc.Cand] = sc.Score
				pool.Put(shipped[sc.Cand])
				src.Done()
				got++
			}
			if !res.Stopped && cfg.stopDue(c) {
				// Mid-step cancellation: stop granting, drain what is out.
				res.Stopped = true
				want -= src.Abandon()
			}
		}
		if res.Stopped {
			break
		}

		// Play the best move (line 6).
		best := argmax(scores)
		st.Play(moves[best])
		c.Work(1)
		res.Steps++
		res.StepLatency = append(res.StepLatency, c.Now()-stepStart)
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				res.QueueDepthMax, res.QueueDepthMean = src.DepthStats()
				return
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
	}

	res.Score = st.Score()
	res.QueueDepthMax, res.QueueDepthMean = src.DepthStats()
}

// specBranch is one speculated next-step branch of the async root: the
// candidates of step `step` that would be offered if move `par` won the
// current step's argmax, issued before the argmax resolved.
type specBranch struct {
	step    int          // the speculated step (current step + 1)
	par     int          // the leading move this branch assumes wins
	moves   []game.Move  // legal moves of the speculated child position
	shipped []game.State // shipped child states, by candidate index
	scores  []float64
	scored  []bool
	got     int // scores already received
}

// runRootAsync is the asynchronous pipelined root (Config.Speculate > 0):
// the pull scheduler extended with outstanding-sample accounting in the
// WU-UCT style — the root knows, per candidate, which samples are
// initiated but unobserved, and uses the partial information to keep the
// pipeline full across step boundaries.
//
//	1 while not end of game
//	2   offer one child per possible move (unless already offered
//	    speculatively last step — then adopt the branch wholesale)
//	3   while scores missing
//	4     on work request: grant the oldest queued child
//	5     on score for this step: record it
//	6     on score for a speculated branch: buffer it against the branch
//	7     once ≤ Speculate scores are missing: for each of the top-k
//	       leaders by partial score, speculatively offer the *next*
//	       step's candidates under that leader's branch
//	8   position = play(move with best score)
//	9   adopt the winner's branch; purge the losers' queued candidates
//	    and let their in-flight grants drain (scores shed by the Par
//	    branch discriminator)
//
// Determinism: a speculative candidate carries the same logical
// coordinates (Step, Cand) — and therefore the same rng keys — that the
// pull scheduler would issue after the argmax, and its State is
// content-equal (clone + Play(leader) + Play(move) vs. the in-place
// path), so an adopted branch's scores are bit-identical to the
// non-speculative ones. Losing branches cost work (Result.SpecWasted),
// never correctness.
func runRootAsync(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	st := cfg.Root.Clone()
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State
	var scores []float64
	var scored []bool

	src := mpi.NewPullSource(c, tagPosition)
	src.Granted = func(to mpi.Rank) { cfg.trace("g", c.Rank(), to, c.Now()) }
	k := cfg.speculate()

	curPar := -1                      // move index played at the previous step
	var adopt *specBranch             // winning branch carried into this step
	branches := map[int]*specBranch{} // live speculation, keyed by leader move
	var bmoves []game.Move            // scratch for branch move enumeration

	// purge drops a branch's still-queued candidates and charges the whole
	// branch to SpecWasted; its in-flight grants drain through the gather
	// and final-drain loops, shed by the Par guard.
	purge := func(b *specBranch) {
		if b == nil {
			return
		}
		src.AbandonFunc(func(it any) bool {
			cd := it.(candidate)
			if cd.Step == b.step && cd.Par == b.par {
				pool.Put(cd.State)
				return true
			}
			return false
		})
		res.SpecWasted += int64(len(b.moves))
	}

	for step := 0; ; step++ {
		stepStart := c.Now()
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			break
		}
		if cfg.stopDue(c) {
			res.Stopped = true
			break
		}

		var got int
		if adopt != nil {
			// The winning branch was speculated: its candidates are already
			// offered (some granted, some even scored). LegalMoves is a
			// deterministic function of position content, so the branch's
			// enumeration is exactly the one just computed — adopt its
			// gather state wholesale instead of re-offering.
			shipped = append(shipped[:0], adopt.shipped...)
			scores = append(scores[:0], adopt.scores...)
			scored = append(scored[:0], adopt.scored...)
			got = adopt.got
			adopt = nil
		} else {
			shipped = shipped[:0]
			scores = scores[:0]
			scored = scored[:0]
			for i, m := range moves {
				child := pool.Get(st)
				c.Work(core.CloneCost)
				child.Play(m)
				c.Work(1)
				shipped = append(shipped, child)
				scores = append(scores, 0)
				scored = append(scored, false)
				src.Offer(candidate{Step: step, Cand: i, Par: curPar, State: child})
			}
		}
		want := len(moves)
		speculated := false

		for got < want {
			msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
			switch msg.Tag {
			case tagWorkReq:
				src.Request(msg.From)
			case tagScore:
				sc := msg.Payload.(stepScore)
				switch {
				case sc.Step == step && sc.Par == curPar:
					if !scored[sc.Cand] {
						scores[sc.Cand] = sc.Score
						scored[sc.Cand] = true
						pool.Put(shipped[sc.Cand])
						src.Done()
						got++
					}
				case sc.Step == step+1 && branches[sc.Par] != nil:
					// A speculative game finished before the step it belongs
					// to even started: buffer it against its branch.
					b := branches[sc.Par]
					b.scores[sc.Cand] = sc.Score
					b.scored[sc.Cand] = true
					b.got++
					pool.Put(b.shipped[sc.Cand])
					src.Done()
				default:
					// A cancelled branch's grant coming home: shed it. Its
					// waste was charged when the branch was purged.
					src.Done()
				}
			}
			if !res.Stopped && cfg.stopDue(c) {
				// Mid-step cancellation: purge the whole queue — the current
				// step's ungranted candidates (which reduce want) and every
				// speculative one — then drain what is out.
				res.Stopped = true
				cur := 0
				src.AbandonFunc(func(it any) bool {
					cd := it.(candidate)
					pool.Put(cd.State)
					if cd.Step == step && cd.Par == curPar {
						cur++
					}
					return true
				})
				want -= cur
			}
			if !speculated && !res.Stopped && !cfg.FirstMoveOnly &&
				got >= 1 && want-got <= k {
				// Close enough to resolution: pick the top-k leaders by
				// partial score and offer their next-step candidates, so
				// idle medians start on step+1 while the stragglers finish.
				speculated = true
				for _, lead := range topLeaders(scores, scored, k) {
					parent := pool.Get(st)
					c.Work(core.CloneCost)
					parent.Play(moves[lead])
					c.Work(1)
					bmoves = parent.LegalMoves(bmoves[:0])
					if len(bmoves) == 0 {
						pool.Put(parent)
						continue // terminal child: nothing to pipeline
					}
					b := &specBranch{step: step + 1, par: lead}
					b.moves = append(b.moves, bmoves...)
					for j, mv := range bmoves {
						child := pool.Get(parent)
						c.Work(core.CloneCost)
						child.Play(mv)
						c.Work(1)
						b.shipped = append(b.shipped, child)
						b.scores = append(b.scores, 0)
						b.scored = append(b.scored, false)
						src.Offer(candidate{Step: step + 1, Cand: j, Par: lead, State: child})
						res.Speculated++
					}
					pool.Put(parent)
					branches[lead] = b
				}
			}
		}
		if res.Stopped {
			break
		}

		// Resolve the argmax: adopt the winner's branch, cancel the rest.
		best := argmax(scores)
		for par, b := range branches {
			if par == best {
				adopt = b
			} else {
				purge(b)
			}
			delete(branches, par)
		}
		st.Play(moves[best])
		c.Work(1)
		curPar = best
		res.Steps++
		res.StepLatency = append(res.StepLatency, c.Now()-stepStart)
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				res.QueueDepthMax, res.QueueDepthMean = src.DepthStats()
				return
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
	}

	// Cancel whatever speculation is still pending — the last gather's
	// branches (the game ended, so their positions will never be played)
	// or an adopted branch a stop cut off — then drain every outstanding
	// grant so no median is parked with work the root never collected.
	for par, b := range branches {
		purge(b)
		delete(branches, par)
	}
	purge(adopt)
	for src.Outstanding() > 0 {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagWorkReq:
			src.Request(msg.From)
		case tagScore:
			src.Done()
		}
	}

	res.Score = st.Score()
	res.QueueDepthMax, res.QueueDepthMean = src.DepthStats()
}

// topLeaders returns up to k candidate indices ordered best-score-first
// (ties to the lower index, matching argmax), considering only candidates
// whose scores have been observed.
func topLeaders(scores []float64, scored []bool, k int) []int {
	var lead []int
	for i, ok := range scored {
		if ok {
			lead = append(lead, i)
		}
	}
	sort.SliceStable(lead, func(a, b int) bool { return scores[lead[a]] > scores[lead[b]] })
	if len(lead) > k {
		lead = lead[:k]
	}
	return lead
}

// runRootStatic is the paper's root process (§IV-A pseudocode):
//
//	1 while not end of game
//	2   node = first median node
//	3   for m in all possible moves
//	4     p = play(position, m)
//	5     send p to node
//	6     node = next median node
//	7   for m in all possible moves
//	8     receive score from node
//	9   position = play(position, move with best score)
//	10 return score
//
// Candidate positions go to medians cyclically; when there are more moves
// than medians a median receives several positions and answers them in
// order (mailboxes are FIFO per sender, like MPI message ordering), so
// pairing scores to moves only needs a per-median FIFO of move indices.
// Kept behind Config.Static as the A/B baseline for the paper's tables.
func runRootStatic(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	st := cfg.Root.Clone()
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State // this step's shipped positions, by move index
	// The score-pairing queues are reused across steps: the map is cleared,
	// not reallocated, every iteration.
	queues := make(map[mpi.Rank][]int, len(lay.Medians))
	var scores []float64

	for step := 0; ; step++ {
		stepStart := c.Now()
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			break
		}
		if cfg.stopDue(c) {
			// The static scheduler stops at step boundaries only: once the
			// fan-out of lines 3–6 has happened, every shipped position
			// must be answered anyway.
			res.Stopped = true
			break
		}

		// Send each candidate position to the next median (lines 2–6).
		// Shipped positions come from the free list: a median is done with
		// a position once it has sent its score back, so last step's
		// states are rewritten in place instead of allocating fresh ones.
		shipped = shipped[:0]
		scores = scores[:0]
		for i, m := range moves {
			child := pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(m)
			c.Work(1)
			shipped = append(shipped, child)
			scores = append(scores, 0)
			med := lay.Medians[i%len(lay.Medians)]
			cfg.trace("a", c.Rank(), med, c.Now())
			c.Send(med, tagPosition, candidate{Step: step, Cand: i, Par: -1, State: child})
			queues[med] = append(queues[med], i)
		}

		// Receive one bare score per candidate (lines 7–8), paired through
		// the per-median FIFO. Each received score also releases the
		// position it answers.
		for range moves {
			msg := c.Recv(mpi.AnyRank, tagScore)
			q := queues[msg.From]
			scores[q[0]] = msg.Payload.(float64)
			pool.Put(shipped[q[0]])
			queues[msg.From] = q[1:]
		}
		for k := range queues {
			delete(queues, k)
		}

		// Play the best move (line 9).
		best := argmax(scores)
		st.Play(moves[best])
		c.Work(1)
		res.Steps++
		res.StepLatency = append(res.StepLatency, c.Now()-stepStart)
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				return
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
	}

	res.Score = st.Score()
}
