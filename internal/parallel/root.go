package parallel

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
)

// runRoot is the paper's root process (§IV-A pseudocode):
//
//	1 while not end of game
//	2   node = first median node
//	3   for m in all possible moves
//	4     p = play(position, m)
//	5     send p to node
//	6     node = next median node
//	7   for m in all possible moves
//	8     receive score from node
//	9   position = play(position, move with best score)
//	10 return score
//
// Candidate positions go to medians cyclically; when there are more moves
// than medians a median receives several positions and answers them in
// order (mailboxes are FIFO per sender, like MPI message ordering). After
// the game (or after the first move in first-move mode) the root
// broadcasts a shutdown to tear the world down, as mpirun would.
func runRoot(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	st := cfg.Root.Clone()
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State // this step's shipped positions, by move index

	for {
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			break
		}

		// Send each candidate position to the next median (lines 2–6).
		// Shipped positions come from the free list: a median is done with
		// a position once it has sent its score back, so last step's
		// states are rewritten in place instead of allocating fresh ones.
		shipped = shipped[:0]
		for i, m := range moves {
			child := pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(m)
			c.Work(1)
			shipped = append(shipped, child)
			med := lay.Medians[i%len(lay.Medians)]
			cfg.trace("a", c.Rank(), med, c.Now())
			c.Send(med, tagPosition, child)
		}

		// Receive one score per candidate (lines 7–8). A median that got
		// several positions answers them in send order, so pairing scores
		// to moves only needs a per-median FIFO of move indices. Each
		// received score also releases the position it answers.
		queues := make(map[mpi.Rank][]int, len(lay.Medians))
		for i := range moves {
			med := lay.Medians[i%len(lay.Medians)]
			queues[med] = append(queues[med], i)
		}
		scores := make([]float64, len(moves))
		for range moves {
			msg := c.Recv(mpi.AnyRank, tagScore)
			q := queues[msg.From]
			scores[q[0]] = msg.Payload.(float64)
			pool.Put(shipped[q[0]])
			queues[msg.From] = q[1:]
		}

		// Play the best move (line 9). Ties go to the first-seen move,
		// matching the sequential argmax.
		best := 0
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[best] {
				best = i
			}
		}
		st.Play(moves[best])
		c.Work(1)
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				break
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
	}

	if !cfg.FirstMoveOnly {
		res.Score = st.Score()
	}

	// Tear down every other process.
	for r := 0; r < c.Size(); r++ {
		if mpi.Rank(r) != c.Rank() {
			c.Send(mpi.Rank(r), tagShutdown, nil)
		}
	}
}
