package parallel

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
)

// runRoot plays the top-level game. The default scheduler is demand-driven
// (runRootPull); Config.Static selects the paper's cyclic push scheduler
// (runRootStatic). Both play the exact same game — client scores are keyed
// by logical job coordinates, not by executing rank — so the choice only
// affects timing.
func runRoot(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	if cfg.Static {
		runRootStatic(c, lay, cfg, res)
	} else {
		runRootPull(c, lay, cfg, res)
	}
	// Tear down every other process, as mpirun would at the end of a run.
	for r := 0; r < c.Size(); r++ {
		if mpi.Rank(r) != c.Rank() {
			c.Send(mpi.Rank(r), tagShutdown, nil)
		}
	}
}

// argmax returns the index of the highest score; ties go to the first-seen
// move, matching the sequential search's argmax.
func argmax(scores []float64) int {
	best := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[best] {
			best = i
		}
	}
	return best
}

// runRootPull is the demand-driven root scheduler. Every step, the root
// offers one candidate position per legal move to its work queue; idle
// medians pull them with (q) work requests and are answered with (g)
// grants. Grants self-balance: a 2×-slower median simply requests half as
// often, instead of stalling the whole step as it does under the static
// cyclic order. Scores come back tagged with their candidate index, so no
// pairing bookkeeping is needed.
//
//	1 while not end of game
//	2   offer one child position per possible move to the work queue
//	3   while scores missing
//	4     on work request: grant the oldest queued child (or queue the median)
//	5     on score: record it against its candidate index
//	6   position = play(move with best score)
//	7 return score
//
// A StopAfter budget cancels mid-step: queued candidates are abandoned,
// already-granted ones are drained (line 5 keeps running) before returning.
func runRootPull(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	st := cfg.Root.Clone()
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State // this step's shipped positions, by move index
	var scores []float64

	src := mpi.NewPullSource(c, tagPosition)
	src.Granted = func(to mpi.Rank) { cfg.trace("g", c.Rank(), to, c.Now()) }

	for step := 0; ; step++ {
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			break
		}
		if cfg.stopDue(c) {
			res.Stopped = true
			break
		}

		// Offer every candidate of the step (line 2). Medians whose
		// requests queued up during the previous step are granted
		// immediately; the rest of the queue drains on demand. Shipped
		// positions recycle last step's states through the free list.
		shipped = shipped[:0]
		scores = scores[:0]
		for i, m := range moves {
			child := pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(m)
			c.Work(1)
			shipped = append(shipped, child)
			scores = append(scores, 0)
			src.Offer(candidate{Step: step, Cand: i, State: child})
		}

		// Serve requests and gather scores (lines 3–5) until every
		// non-abandoned candidate is scored.
		want := len(moves)
		got := 0
		for got < want {
			msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
			switch msg.Tag {
			case tagWorkReq:
				src.Request(msg.From)
			case tagScore:
				sc := msg.Payload.(stepScore)
				scores[sc.Cand] = sc.Score
				pool.Put(shipped[sc.Cand])
				src.Done()
				got++
			}
			if !res.Stopped && cfg.stopDue(c) {
				// Mid-step cancellation: stop granting, drain what is out.
				res.Stopped = true
				want -= src.Abandon()
			}
		}
		if res.Stopped {
			break
		}

		// Play the best move (line 6).
		best := argmax(scores)
		st.Play(moves[best])
		c.Work(1)
		res.Steps++
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				res.QueueDepthMax, res.QueueDepthMean = src.DepthStats()
				return
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
	}

	res.Score = st.Score()
	res.QueueDepthMax, res.QueueDepthMean = src.DepthStats()
}

// runRootStatic is the paper's root process (§IV-A pseudocode):
//
//	1 while not end of game
//	2   node = first median node
//	3   for m in all possible moves
//	4     p = play(position, m)
//	5     send p to node
//	6     node = next median node
//	7   for m in all possible moves
//	8     receive score from node
//	9   position = play(position, move with best score)
//	10 return score
//
// Candidate positions go to medians cyclically; when there are more moves
// than medians a median receives several positions and answers them in
// order (mailboxes are FIFO per sender, like MPI message ordering), so
// pairing scores to moves only needs a per-median FIFO of move indices.
// Kept behind Config.Static as the A/B baseline for the paper's tables.
func runRootStatic(c mpi.Comm, lay cluster.Layout, cfg *Config, res *Result) {
	st := cfg.Root.Clone()
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State // this step's shipped positions, by move index
	// The score-pairing queues are reused across steps: the map is cleared,
	// not reallocated, every iteration.
	queues := make(map[mpi.Rank][]int, len(lay.Medians))
	var scores []float64

	for step := 0; ; step++ {
		moves = st.LegalMoves(moves[:0])
		if len(moves) == 0 {
			break
		}
		if cfg.stopDue(c) {
			// The static scheduler stops at step boundaries only: once the
			// fan-out of lines 3–6 has happened, every shipped position
			// must be answered anyway.
			res.Stopped = true
			break
		}

		// Send each candidate position to the next median (lines 2–6).
		// Shipped positions come from the free list: a median is done with
		// a position once it has sent its score back, so last step's
		// states are rewritten in place instead of allocating fresh ones.
		shipped = shipped[:0]
		scores = scores[:0]
		for i, m := range moves {
			child := pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(m)
			c.Work(1)
			shipped = append(shipped, child)
			scores = append(scores, 0)
			med := lay.Medians[i%len(lay.Medians)]
			cfg.trace("a", c.Rank(), med, c.Now())
			c.Send(med, tagPosition, candidate{Step: step, Cand: i, State: child})
			queues[med] = append(queues[med], i)
		}

		// Receive one bare score per candidate (lines 7–8), paired through
		// the per-median FIFO. Each received score also releases the
		// position it answers.
		for range moves {
			msg := c.Recv(mpi.AnyRank, tagScore)
			q := queues[msg.From]
			scores[q[0]] = msg.Payload.(float64)
			pool.Put(shipped[q[0]])
			queues[msg.From] = q[1:]
		}
		for k := range queues {
			delete(queues, k)
		}

		// Play the best move (line 9).
		best := argmax(scores)
		st.Play(moves[best])
		c.Work(1)
		res.Steps++
		if len(res.Sequence) == 0 {
			res.FirstMove = moves[best]
			if cfg.FirstMoveOnly {
				res.Score = scores[best]
				res.Sequence = append(res.Sequence, moves[best])
				return
			}
		}
		res.Sequence = append(res.Sequence, moves[best])
	}

	res.Score = st.Score()
}
