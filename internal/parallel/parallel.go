// Package parallel implements the paper's contribution: the parallelization
// of Nested Monte-Carlo Search on a cluster (§IV).
//
// Four process roles cooperate through message passing (mpi.Comm):
//
//   - The root process (rank 0) plays the top-level game. At every step it
//     ships each candidate position to a median node and plays the move
//     whose median reported the best score.
//   - Median processes each play a full level-(ℓ−1) game from the position
//     they receive. At every step of that game they ask the dispatcher for
//     a client per candidate move, ship the positions, gather the scores,
//     and play the argmax move. The final score goes back to the root.
//   - The dispatcher assigns clients to median requests: cyclically
//     (Round-Robin, §IV-A) or by tracking free clients and serving the
//     longest-expected pending job first (Last-Minute, §IV-B; expected
//     work is estimated by the number of moves already played — fewer
//     moves means a longer remaining game).
//   - Client processes run the actual nested rollouts at level ℓ−2 and
//     return the score.
//
// Two root-level schedulers are provided. The default is demand-driven
// (work stealing): idle medians pull their next candidate position from
// the root's work queue (mpi.PullSource), so heterogeneous node speeds and
// uneven playout lengths self-balance; a bounded prefetch window
// (Config.Prefetch) hides the request/grant round trip without deviating
// from the paper's small-message Gigabit cost model. Config.Static selects
// the paper's §IV-A scheduler instead — candidate positions pushed to
// medians in fixed cyclic order — kept for A/B reproduction of the paper's
// tables. Client rollout scores are derived from the job's logical
// coordinates in the search tree, not from the executing rank, so both
// schedulers produce bit-identical move sequences for the same seed (see
// pull_test.go).
//
// The code is written against mpi.Comm only and runs identically on the
// deterministic virtual cluster (speedup tables) and on real goroutines.
package parallel

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/vtime"
)

// Algorithm selects the dispatcher policy.
type Algorithm int

const (
	// RoundRobin hands clients out cyclically, blind to load (§IV-A).
	RoundRobin Algorithm = iota
	// LastMinute tracks free clients and serves the pending job with the
	// smallest move count — the longest expected job — first (§IV-B).
	LastMinute
)

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case RoundRobin:
		return "RR"
	case LastMinute:
		return "LM"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Message tags of the protocol. The letters refer to the communications in
// the paper's figures 2–5; (q) is the pull scheduler's work request, whose
// grant reuses tagPosition (a granted candidate is a position to play).
const (
	tagPosition mpi.Tag = iota + 1 // (a)/(g) root -> median: position to play
	tagScore                       // (d) median -> root: score of the finished game
	tagRequest                     // (b) median -> dispatcher: request a client
	tagAssign                      // (b) dispatcher -> median: assigned client rank
	tagJob                         // (b) median -> client: position to evaluate
	tagResult                      // (c) client -> median: score of the rollout
	tagFree                        // (c') client -> dispatcher: client is free again
	tagWorkReq                     // (q) median -> root: idle, pull the next candidate
	tagShutdown                    // teardown broadcast at end of run
)

// candidate is the root→median payload: one candidate position of the
// root's current step, tagged with its logical coordinates. The
// coordinates seed the job-key random streams (see job.Key), which is what
// decouples search results from scheduling decisions.
//
// Par is the branch discriminator of the async scheduler: the index of
// the parent move played at the previous step (−1 at step 0, and for
// every candidate issued by the non-speculating schedulers). A
// speculative candidate for step s+1 carries the step-s move it assumes
// will win; when the argmax resolves, scores whose Par is not the
// winning move are shed.
type candidate struct {
	Step  int // root game step the candidate belongs to
	Cand  int // candidate (move) index within that step
	Par   int // parent move index at the previous step (−1 = none)
	State game.State
}

// EncodedSize implements game.Sizer for the virtual network model: the
// position's own encoded size plus the two coordinate words.
func (c candidate) EncodedSize() int {
	if s, ok := c.State.(game.Sizer); ok {
		return s.EncodedSize() + 16
	}
	return 64 + 16
}

// job is the median→client payload: the position to evaluate, the
// median-local candidate index echoed back in the result, and the random
// stream key derived from the job's logical coordinates (root step, root
// candidate, median step, median candidate). Identical coordinates yield
// identical scores no matter which client executes the job.
type job struct {
	Key   uint64
	Seq   int
	State game.State
}

// EncodedSize implements game.Sizer.
func (j job) EncodedSize() int {
	if s, ok := j.State.(game.Sizer); ok {
		return s.EncodedSize() + 16
	}
	return 64 + 16
}

// jobScore is the client→median result: the rollout score of the Seq-th
// candidate of the median's current step.
type jobScore struct {
	Seq   int
	Score float64
}

// EncodedSize implements game.Sizer.
func (jobScore) EncodedSize() int { return 16 }

// stepScore is the pull scheduler's median→root score message: the final
// game score of the Cand-th candidate of the root's current step. The
// static scheduler ships bare float64 scores instead, answered in FIFO
// order per median, exactly like the paper's MPI messages. Step and Par
// echo the granted candidate's coordinates so the async root can match a
// score to the step and speculative branch that issued it (the pull and
// static gathers key scores by arrival step alone, where the echo is
// redundant but harmless).
type stepScore struct {
	Step  int
	Cand  int
	Par   int
	Score float64
}

// EncodedSize implements game.Sizer.
func (stepScore) EncodedSize() int { return 16 }

// Config parameterizes one parallel search run.
type Config struct {
	// Algo is the dispatcher policy.
	Algo Algorithm
	// Level is the overall nesting level ℓ ≥ 2: the root plays at ℓ, the
	// medians at ℓ−1 and the clients run nested rollouts at ℓ−2 (level 0
	// being a plain random sample). The paper evaluates ℓ = 3 and 4.
	Level int
	// Root is the initial position; the run never mutates it.
	Root game.State
	// Seed derives all process random streams; runs with equal seeds on
	// the virtual transport are bit-identical.
	Seed uint64
	// FirstMoveOnly stops the root after choosing its first move — the
	// "first move" experiments of tables II, IV and VI. Otherwise the root
	// plays an entire game ("rollout" experiments, tables III and V).
	FirstMoveOnly bool
	// Memorize enables best-sequence memorization inside the clients'
	// nested rollouts (core.Options.Memorize). The paper's root and median
	// levels use plain per-step argmax, which is what this package does
	// regardless of the flag.
	Memorize bool
	// Tracer, when non-nil, records every protocol communication (figures
	// 2–5). Implementations must be safe for concurrent use on the wall
	// transport.
	Tracer Tracer
	// JobScale multiplies the work units charged for client rollouts on
	// the virtual transport (default 1). The scaled-down stand-in domains
	// finish a rollout in microseconds where the paper's level-3/4 jobs
	// take seconds; JobScale restores the paper's computation-to-
	// communication granularity ratio without inflating the root and
	// median bookkeeping, whose real cost is genuinely tiny. Speedup
	// shapes depend on this dimensionless ratio, not on absolute times
	// (see DESIGN.md §2 and EXPERIMENTS.md).
	JobScale int64
	// LMFifo is an ablation of the Last-Minute dispatcher: when true,
	// pending jobs are served in arrival order instead of by the paper's
	// longest-expected-job-first heuristic (§IV-B line 8: "find j in jobs
	// with the smallest number of moves"). Only meaningful with
	// Algo == LastMinute.
	LMFifo bool
	// Static selects the paper's §IV-A root scheduler: candidate positions
	// pushed to medians in fixed cyclic order, every step blocking on the
	// slowest median. The default (false) is the demand-driven pull
	// scheduler, where idle medians request their next candidate from the
	// root's work queue. Both produce bit-identical move sequences for the
	// same seed; only the timing differs.
	Static bool
	// Prefetch bounds the pull scheduler's per-median request window: the
	// number of work requests a median keeps in flight while it plays a
	// granted game, so the next grant travels during computation instead
	// of after it. 0 selects the default of 1; negative disables
	// prefetching (strict request-after-finish, exposing the round-trip
	// latency). Ignored in static mode.
	Prefetch int
	// Speculate, when positive, turns the pull scheduler into the
	// asynchronous pipelined root: the root tracks outstanding
	// (initiated-but-unobserved) samples per candidate, and once a step's
	// partial scores identify the top-Speculate leaders it speculatively
	// offers the *next* step's candidates for those leading moves — under
	// their real logical-coordinate rng keys — so medians never drain at
	// the step boundary. When the argmax resolves, the losing branches'
	// queued candidates are purged and their in-flight grants drained
	// (scores shed by the branch discriminator, counted in
	// Result.SpecWasted); a winning branch's work is adopted wholesale.
	// Because rollout rng is keyed by logical job coordinates — never by
	// rank or timing — results stay bit-identical to the pull and static
	// schedulers per seed. 0 (the default) disables speculation; ignored
	// in static mode.
	Speculate int
	// StopAfter, when positive, cancels the root game once the transport
	// clock reaches it. The pull scheduler stops mid-step: remaining
	// ungranted candidates are abandoned and the already-granted ones are
	// drained (their scores received) before the shutdown broadcast, so no
	// process is torn down with work in flight. The static scheduler stops
	// at the next step boundary. The result carries Stopped=true and the
	// game played so far.
	StopAfter time.Duration
	// Evaluator, when non-empty, names the registered game.Evaluator
	// (game.RegisterEvaluator) that guides the clients' level-0 playouts;
	// empty keeps the paper's uniform playouts bit-identically. The name —
	// not a function value — is the configuration surface because jobs
	// cross process boundaries on distributed pools, and the executing
	// worker resolves the same name against its own registry into
	// core.Options.Evaluator, whose doc is the source of truth for how
	// weights steer a playout. Per-run clients construct the evaluator
	// directly; pool clients go through the per-worker batcher (see
	// evalbatch.go).
	Evaluator string
	// Cache enables the transposition cache on the clients' nested
	// rollouts: one cache, shared by every client of the run (or, on a
	// Pool, by every slot and job of the process), keyed by position
	// content so identical sub-positions are searched once. Caching runs
	// the searchers in derived mode and is therefore NOT bit-identical to
	// the default — results become a deterministic function of position
	// rather than of (seed, job); see core.Options.Cache, the source of
	// truth for the semantics. Default off.
	Cache bool
	// CacheVerify recomputes every cache hit and panics on mismatch
	// (core.Options.CacheVerify). Test/debug mode; implies the cost of a
	// cache-off run.
	CacheVerify bool
}

// jobScale returns the effective client work multiplier.
func (cfg *Config) jobScale() int64 {
	if cfg.JobScale <= 0 {
		return 1
	}
	return cfg.JobScale
}

// prefetch returns the effective pull-scheduler request window.
func (cfg *Config) prefetch() int {
	switch {
	case cfg.Prefetch < 0:
		return 0
	case cfg.Prefetch == 0:
		return 1
	default:
		return cfg.Prefetch
	}
}

// speculate returns the effective speculation width: the number of
// leading moves whose next-step candidates are enqueued before the
// argmax resolves. 0 = speculation off (and always 0 in static mode,
// where the paper's lockstep protocol has no queue to pipeline).
func (cfg *Config) speculate() int {
	if cfg.Static || cfg.Speculate <= 0 {
		return 0
	}
	return cfg.Speculate
}

// stopDue reports whether the StopAfter budget has run out.
func (cfg *Config) stopDue(c mpi.Comm) bool {
	return deadlineDue(c, 0, cfg.StopAfter)
}

// deadlineDue reports whether budget has elapsed on clock since the start
// reading. It is the one deadline predicate of the package: the per-run
// StopAfter poll, the pool's per-job deadline and the batcher's wait
// metering all read the same vtime.Clock axis, so a virtual-time harness
// charges every wait consistently (mpi.Comm is a vtime.Clock — virtual
// makespan on the simulated cluster, monotonic wall time otherwise). A
// non-positive budget never expires.
func deadlineDue(clock vtime.Clock, start, budget time.Duration) bool {
	return budget > 0 && clock.Now()-start >= budget
}

// deadlineFunc binds deadlineDue into the poll closure shape that
// core.Options.Stop and the job gather loops consume.
func deadlineFunc(clock vtime.Clock, start, budget time.Duration) func() bool {
	return func() bool { return deadlineDue(clock, start, budget) }
}

// Result is the outcome of a run.
type Result struct {
	// Score of the game the root played (first-move mode: the best
	// lower-level evaluation backing the chosen move).
	Score float64
	// FirstMove is the move the root chose first.
	FirstMove game.Move
	// Sequence is the root's played game.
	Sequence []game.Move
	// Elapsed is the transport time of the run: virtual makespan on the
	// virtual cluster, wall time otherwise.
	Elapsed time.Duration
	// Jobs is the number of client rollouts executed.
	Jobs int64
	// WorkUnits is the total metered CPU work across clients.
	WorkUnits int64
	// ClientBusy maps each client index to its cumulative busy virtual
	// time; utilization = busy / Elapsed. Only filled by virtual runs.
	ClientBusy []time.Duration
	// ClientIdle maps each client index to its cumulative time blocked in
	// Recv — waiting for a job or for the shutdown broadcast. Idle spread
	// across ranks is the load-imbalance signal the pull scheduler exists
	// to shrink.
	ClientIdle []time.Duration
	// MedianIdle maps each median index to its cumulative Recv-blocked
	// time: waiting for a candidate (static: its turn in the cyclic order;
	// pull: a grant), for a dispatcher assignment, or for client results.
	MedianIdle []time.Duration
	// Steps is the number of root game steps played.
	Steps int
	// Stopped is true when Config.StopAfter cancelled the game early.
	Stopped bool
	// Regranted counts candidate grants this job lost to worker crashes
	// and had re-queued (distributed pools only; see PoolMetrics). The
	// churn costs compute, never correctness: Score, Sequence, Jobs and
	// WorkUnits are unaffected.
	Regranted int64
	// Speculated / SpecWasted count the async scheduler's speculative
	// next-step candidates: how many were issued ahead of an argmax
	// resolution, and how many of those were wasted on branches that
	// lost (their queued candidates purged, their in-flight scores
	// drained and shed). Zero unless Config.Speculate > 0. Waste costs
	// compute, never correctness.
	Speculated int64
	SpecWasted int64
	// StepLatency records the transport time each root step took from
	// issuing its candidates to playing its move, in step order — the
	// metric the async scheduler attacks (a straggling median stretches
	// individual steps long before it moves total Elapsed).
	StepLatency []time.Duration
	// QueueDepthMax / QueueDepthMean profile the pull scheduler's ready
	// queue (candidates offered but not yet granted), sampled at every
	// offer/request transition. Zero under the static scheduler.
	QueueDepthMax  int
	QueueDepthMean float64
	// Degraded is true when the job ran (or ended) on a shrunken pool:
	// at least one worker process was abandoned — lost for good with no
	// replacement — while this job was in flight (distributed pools
	// only). Score, Sequence, Jobs and WorkUnits are still bit-identical
	// to an undisturbed run; the flag reports capacity, not correctness.
	Degraded bool
}

// Event is one protocol communication, labelled like the paper's figures:
// "a" root→median position, "b" the request/assign/job triplet, "c" the
// result, "c'" the Last-Minute free notice, "d" the median's final score.
type Event struct {
	Kind string
	From mpi.Rank
	To   mpi.Rank
	At   time.Duration
}

// Tracer records protocol events.
type Tracer interface {
	Record(Event)
}

// trace emits an event if tracing is on.
func (cfg *Config) trace(kind string, from, to mpi.Rank, at time.Duration) {
	if cfg.Tracer != nil {
		cfg.Tracer.Record(Event{Kind: kind, From: from, To: to, At: at})
	}
}

// Execute wires the processes onto cl according to the layout and runs the
// search to completion. The cluster must have been built with lay.Size()
// ranks (and lay.Speeds for a virtual cluster).
func Execute(cl mpi.Cluster, lay cluster.Layout, cfg Config) (Result, error) {
	if cfg.Level < 2 {
		return Result{}, fmt.Errorf("parallel: level %d < 2 cannot be distributed (root, median, client need one level each)", cfg.Level)
	}
	if cfg.Root == nil {
		return Result{}, fmt.Errorf("parallel: no root position")
	}
	if cl.Size() != lay.Size() {
		return Result{}, fmt.Errorf("parallel: cluster has %d ranks, layout wants %d", cl.Size(), lay.Size())
	}
	if len(lay.Medians) == 0 || len(lay.Clients) == 0 {
		return Result{}, fmt.Errorf("parallel: layout needs medians and clients")
	}
	if cfg.Evaluator != "" && !game.HasEvaluator(cfg.Evaluator) {
		return Result{}, fmt.Errorf("parallel: unknown evaluator %q (registered: %v)",
			cfg.Evaluator, game.EvaluatorNames())
	}

	res := &Result{
		ClientBusy: make([]time.Duration, len(lay.Clients)),
		ClientIdle: make([]time.Duration, len(lay.Clients)),
		MedianIdle: make([]time.Duration, len(lay.Medians)),
	}
	coll := &collector{
		busy:       make([]time.Duration, len(lay.Clients)),
		clientIdle: make([]time.Duration, len(lay.Clients)),
		medianIdle: make([]time.Duration, len(lay.Medians)),
	}

	cl.Start(lay.Root, func(c mpi.Comm) {
		runRoot(c, lay, &cfg, res)
	})
	cl.Start(lay.Dispatcher, func(c mpi.Comm) {
		runDispatcher(c, lay, &cfg)
	})
	for i, m := range lay.Medians {
		i := i
		cl.Start(m, func(c mpi.Comm) {
			runMedian(c, lay, &cfg, i, coll)
		})
	}
	// The run-local transposition cache: one per Execute, shared by the
	// run's client ranks and torn down with the run (pools keep a
	// process-lifetime cache instead; see PoolConfig.CacheMB). Nil when the
	// run does not opt in, which keeps the cache-off path bit-identical.
	var tc *cache.Cache
	if cfg.Cache {
		tc = cache.New(0)
	}
	for i, cr := range lay.Clients {
		i := i
		cl.Start(cr, func(c mpi.Comm) {
			runClient(c, lay, &cfg, i, coll, tc)
		})
	}

	res.Elapsed = cl.Run()
	res.Jobs = coll.jobs
	res.WorkUnits = coll.units
	copy(res.ClientBusy, coll.busy)
	copy(res.ClientIdle, coll.clientIdle)
	copy(res.MedianIdle, coll.medianIdle)
	return *res, nil
}
