package parallel

// Unit tests for the evaluation batcher: the two flush triggers (size and
// deadline), result fidelity against a direct unbatched evaluation, and the
// uniform fallback for names that fail to resolve.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/samegame"
	"repro/internal/vtime"
)

// batchReq builds one evaluation request on a fresh clone (states are not
// concurrent-safe, so concurrent submitters never share one).
func batchReq(t *testing.T) game.EvalRequest {
	t.Helper()
	st := samegame.NewRandom(5, 5, 3, 3).Clone()
	moves := st.LegalMoves(nil)
	if len(moves) == 0 {
		t.Fatal("test position has no legal moves")
	}
	return game.EvalRequest{State: st, Moves: moves}
}

// TestEvalBatcherFlushOnSize pins the size trigger: with an unreachable
// deadline, the submission that fills the batch must flush it, and all
// blocked submitters must receive their weights from that single flush.
func TestEvalBatcherFlushOnSize(t *testing.T) {
	const n = 3
	b := newEvalBatcher(n, time.Hour, vtime.Wall())

	var wg sync.WaitGroup
	outs := make([][]float64, n)
	reqs := make([]game.EvalRequest, n)
	for i := 0; i < n; i++ {
		reqs[i] = batchReq(t)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = b.submit(game.HeuristicEvaluatorName, reqs[i], nil)
		}(i)
	}
	wg.Wait()

	for i, out := range outs {
		if len(out) != len(reqs[i].Moves) {
			t.Fatalf("submitter %d: %d weights for %d moves", i, len(out), len(reqs[i].Moves))
		}
	}
	s := b.snapshot()
	if s.Batches != 1 || s.FlushSize != 1 || s.FlushDeadline != 0 {
		t.Fatalf("size trigger stats: %+v", s)
	}
	if s.Requests != n || s.BatchMax != n {
		t.Fatalf("batch accounting: %+v", s)
	}
}

// TestEvalBatcherFlushOnDeadline pins the deadline trigger: a lone
// submission in an 8-wide batcher must not wait for seven peers that will
// never come — the timer flushes the partial batch.
func TestEvalBatcherFlushOnDeadline(t *testing.T) {
	b := newEvalBatcher(8, 10*time.Millisecond, vtime.Wall())
	req := batchReq(t)
	out := b.submit(game.HeuristicEvaluatorName, req, nil)
	if len(out) != len(req.Moves) {
		t.Fatalf("%d weights for %d moves", len(out), len(req.Moves))
	}
	s := b.snapshot()
	if s.Batches != 1 || s.FlushDeadline != 1 || s.FlushSize != 0 {
		t.Fatalf("deadline trigger stats: %+v", s)
	}
	if s.Requests != 1 || s.BatchMax != 1 {
		t.Fatalf("batch accounting: %+v", s)
	}
	if s.FlushWait < 10*time.Millisecond {
		t.Fatalf("flush wait %v shorter than the deadline", s.FlushWait)
	}
}

// TestEvalBatcherSizeFlushDisarmsTimer pins the timer-leak fix: a batch
// that flushes on size must Stop the deadline timer its first submission
// armed. Before the fix the timer handle was dropped and every size-flush
// left a live timer to fire late; the generation guard kept it from
// corrupting the counters, but the leak is observable through the timer
// field and the test would also catch a stale firing that did flush
// (FlushDeadline must stay zero long after the deadline has passed).
func TestEvalBatcherSizeFlushDisarmsTimer(t *testing.T) {
	const deadline = 10 * time.Millisecond
	b := newEvalBatcher(2, deadline, vtime.Wall())

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		req := batchReq(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.submit(game.HeuristicEvaluatorName, req, nil)
		}()
	}
	wg.Wait()

	b.mu.Lock()
	leaked := b.timer != nil
	b.mu.Unlock()
	if leaked {
		t.Fatal("size flush left the deadline timer armed")
	}

	time.Sleep(3 * deadline)
	s := b.snapshot()
	if s.Batches != 1 || s.FlushSize != 1 || s.FlushDeadline != 0 {
		t.Fatalf("stale timer flushed a later generation: %+v", s)
	}

	// The next straggler batch must still arm (and fire) a fresh timer:
	// disarming one generation's timer must not wedge the deadline path.
	req := batchReq(t)
	b.submit(game.HeuristicEvaluatorName, req, nil)
	if s := b.snapshot(); s.Batches != 2 || s.FlushDeadline != 1 {
		t.Fatalf("deadline path after a size flush: %+v", s)
	}
}

// TestEvalBatcherMatchesDirect pins the batching-never-changes-results
// claim at the weight level: weights through the batched facade must equal
// a direct, unbatched evaluation of the same position.
func TestEvalBatcherMatchesDirect(t *testing.T) {
	req := batchReq(t)
	direct, err := game.NewEvaluator(game.HeuristicEvaluatorName)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Evaluate(game.EvalRequest{State: req.State.Clone(), Moves: req.Moves}, nil)

	b := newEvalBatcher(4, time.Millisecond, vtime.Wall())
	got := b.evaluatorFor(game.HeuristicEvaluatorName).Evaluate(req, nil)
	if len(got) != len(want) {
		t.Fatalf("weight counts: %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("weight %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestEvalBatcherUnknownName pins the version-skew fallback: a name that
// fails to resolve leaves the output empty, which the searcher's
// degenerate-weights guard turns into a uniform draw.
func TestEvalBatcherUnknownName(t *testing.T) {
	b := newEvalBatcher(1, time.Millisecond, vtime.Wall())
	out := b.submit("no-such-evaluator", batchReq(t), nil)
	if len(out) != 0 {
		t.Fatalf("unknown evaluator produced %d weights, want none", len(out))
	}
	if s := b.snapshot(); s.Batches != 1 {
		t.Fatalf("unknown-name submission not flushed: %+v", s)
	}
}
