package parallel

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/mpi"
)

// fastVirtual returns VirtualOptions sized for tests: small median pool and
// cheap unit cost so simulations stay quick.
func fastVirtual(medians int) VirtualOptions {
	return VirtualOptions{UnitCost: time.Microsecond, Medians: medians}
}

// testJobScale restores the paper's computation-to-communication ratio for
// the tiny 4D level-2 jobs used in tests (see Config.JobScale).
const testJobScale = 20000

func TestParallelSolvesArmTreeExactly(t *testing.T) {
	// A level-2 parallel search on a depth-2 arm tree must find the global
	// optimum under both dispatchers: the client evaluations are exact on
	// depth-1 subtrees and the median/root argmax lifts them (same
	// induction as the sequential search).
	for _, algo := range []Algorithm{RoundRobin, LastMinute} {
		t.Run(algo.String(), func(t *testing.T) {
			tree := game.NewArmTree(3, 2, 77)
			cfg := Config{
				Algo: algo, Level: 2, Root: tree, Seed: 1, Memorize: true,
			}
			res, err := RunVirtual(cluster.Homogeneous(4), cfg, fastVirtual(8))
			if err != nil {
				t.Fatal(err)
			}
			if want := tree.Optimum(); res.Score != want {
				t.Fatalf("%v found %v, optimum %v", algo, res.Score, want)
			}
			if len(res.Sequence) != 2 {
				t.Fatalf("sequence length %d, want 2", len(res.Sequence))
			}
		})
	}
}

func TestParallelMorpionSequenceReplays(t *testing.T) {
	start := morpion.New(morpion.Var4D)
	cfg := Config{Algo: RoundRobin, Level: 2, Root: start, Seed: 3, Memorize: true}
	res, err := RunVirtual(cluster.Homogeneous(8), cfg, fastVirtual(16))
	if err != nil {
		t.Fatal(err)
	}
	st := start.Clone()
	for i, m := range res.Sequence {
		legal := false
		for _, lm := range st.LegalMoves(nil) {
			if lm == m {
				legal = true
				break
			}
		}
		if !legal {
			t.Fatalf("root move %d is illegal on replay", i)
		}
		st.Play(m)
	}
	if !st.Terminal() {
		t.Fatal("root game did not reach a terminal position")
	}
	if st.Score() != res.Score {
		t.Fatalf("replayed score %v != reported %v", st.Score(), res.Score)
	}
	if res.Jobs == 0 || res.WorkUnits == 0 {
		t.Fatalf("no client work recorded: %+v", res)
	}
}

func TestParallelDeterministic(t *testing.T) {
	run := func() Result {
		cfg := Config{Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
			Seed: 42, Memorize: true, FirstMoveOnly: true}
		res, err := RunVirtual(cluster.Homogeneous(8), cfg, fastVirtual(16))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Score != b.Score || a.Elapsed != b.Elapsed || a.FirstMove != b.FirstMove || a.Jobs != b.Jobs {
		t.Fatalf("virtual runs differ:\n%+v\n%+v", a, b)
	}
}

func TestFirstMoveMode(t *testing.T) {
	cfg := Config{Algo: RoundRobin, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 5, Memorize: true, FirstMoveOnly: true}
	res, err := RunVirtual(cluster.Homogeneous(4), cfg, fastVirtual(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) != 1 {
		t.Fatalf("first-move mode played %d moves", len(res.Sequence))
	}
	if res.FirstMove != res.Sequence[0] {
		t.Fatal("FirstMove does not match sequence head")
	}
	if res.Score <= 0 {
		t.Fatalf("first-move evaluation score %v", res.Score)
	}
}

func TestSpeedupWithMoreClients(t *testing.T) {
	// The defining property of the paper: more clients, less elapsed
	// (virtual) time for the same experiment. 4D level 2, first move.
	elapsed := map[int]time.Duration{}
	for _, n := range []int{1, 4, 16} {
		cfg := Config{Algo: RoundRobin, Level: 2, Root: morpion.New(morpion.Var4D),
			Seed: 7, Memorize: true, FirstMoveOnly: true, JobScale: testJobScale}
		res, err := RunVirtual(cluster.Homogeneous(n), cfg, fastVirtual(48))
		if err != nil {
			t.Fatal(err)
		}
		elapsed[n] = res.Elapsed
	}
	t.Logf("first-move times: 1=%v 4=%v 16=%v", elapsed[1], elapsed[4], elapsed[16])
	if !(elapsed[4] < elapsed[1]) || !(elapsed[16] < elapsed[4]) {
		t.Fatalf("no speedup: %v", elapsed)
	}
	speedup16 := float64(elapsed[1]) / float64(elapsed[16])
	if speedup16 < 3 {
		t.Fatalf("16-client speedup only %.2f", speedup16)
	}
}

func TestLastMinuteBeatsRoundRobinOnHeterogeneous(t *testing.T) {
	// Table VI's headline: on a heterogeneous cluster the Last-Minute
	// dispatcher outperforms Round-Robin, which blindly queues jobs on
	// oversubscribed half-speed clients.
	spec := cluster.Hetero8x4p8x2()
	times := map[Algorithm]time.Duration{}
	for _, algo := range []Algorithm{RoundRobin, LastMinute} {
		cfg := Config{Algo: algo, Level: 2, Root: morpion.New(morpion.Var4D),
			Seed: 11, Memorize: true, FirstMoveOnly: true, JobScale: testJobScale}
		res, err := RunVirtual(spec, cfg, fastVirtual(48))
		if err != nil {
			t.Fatal(err)
		}
		times[algo] = res.Elapsed
	}
	t.Logf("heterogeneous first move: RR=%v LM=%v", times[RoundRobin], times[LastMinute])
	if times[LastMinute] >= times[RoundRobin] {
		t.Fatalf("LM (%v) not faster than RR (%v) on heterogeneous cluster",
			times[LastMinute], times[RoundRobin])
	}
}

func TestWallTransportSmoke(t *testing.T) {
	// The same protocol runs natively on goroutines.
	tree := game.NewArmTree(3, 2, 5)
	cfg := Config{Algo: LastMinute, Level: 2, Root: tree, Seed: 2, Memorize: true}
	res, err := RunWall(4, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.Optimum(); res.Score != want {
		t.Fatalf("wall run found %v, optimum %v", res.Score, want)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no wall time elapsed")
	}
}

func TestClientBusyAccounting(t *testing.T) {
	cfg := Config{Algo: RoundRobin, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 13, Memorize: true, FirstMoveOnly: true}
	res, err := RunVirtual(cluster.Homogeneous(4), cfg, fastVirtual(8))
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for i, b := range res.ClientBusy {
		if b < 0 {
			t.Fatalf("client %d negative busy time", i)
		}
		if b > res.Elapsed {
			t.Fatalf("client %d busy %v exceeds makespan %v", i, b, res.Elapsed)
		}
		total += b
	}
	if total == 0 {
		t.Fatal("no client was ever busy")
	}
	if limit := res.Elapsed * time.Duration(len(res.ClientBusy)); total > limit {
		t.Fatalf("total busy %v exceeds capacity %v", total, limit)
	}
}

func TestMoreMoviesThanMediansWraps(t *testing.T) {
	// With only 2 medians the root's ~40 first moves wrap around the
	// median pool; scores must still pair up correctly (FIFO per median).
	tree := game.NewArmTree(5, 2, 21)
	cfg := Config{Algo: RoundRobin, Level: 2, Root: tree, Seed: 9, Memorize: true}
	res, err := RunVirtual(cluster.Homogeneous(3), cfg, fastVirtual(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.Optimum(); res.Score != want {
		t.Fatalf("wrapped medians broke pairing: got %v, want %v", res.Score, want)
	}
}

func TestExecuteValidation(t *testing.T) {
	spec := cluster.Homogeneous(2)
	good := Config{Algo: RoundRobin, Level: 2, Root: game.NewArmTree(2, 2, 1), Memorize: true}

	bad := good
	bad.Level = 1
	if _, err := RunVirtual(spec, bad, fastVirtual(2)); err == nil {
		t.Error("level 1 accepted")
	}

	bad = good
	bad.Root = nil
	if _, err := RunVirtual(spec, bad, fastVirtual(2)); err == nil {
		t.Error("nil root accepted")
	}

	lay := spec.Layout(2)
	wrong := mpi.NewVirtualCluster(mpi.VirtualConfig{Speeds: []float64{1, 1}})
	if _, err := Execute(wrong, lay, good); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestLevel3SmokeTest(t *testing.T) {
	// Level 3 (clients run level-1 rollouts) on the cheap arm tree:
	// depth-3 tree solved exactly.
	if testing.Short() {
		t.Skip("level 3 in short mode")
	}
	tree := game.NewArmTree(3, 3, 33)
	cfg := Config{Algo: LastMinute, Level: 3, Root: tree, Seed: 17, Memorize: true}
	res, err := RunVirtual(cluster.Homogeneous(8), cfg, fastVirtual(16))
	if err != nil {
		t.Fatal(err)
	}
	if want := tree.Optimum(); res.Score != want {
		t.Fatalf("level 3 found %v, optimum %v", res.Score, want)
	}
}

func TestAlgorithmString(t *testing.T) {
	if RoundRobin.String() != "RR" || LastMinute.String() != "LM" {
		t.Fatal("algorithm names changed")
	}
}
