package parallel

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
)

// runMedian is the paper's median process (§IV-A pseudocode):
//
//	1 while true
//	2   receive position from root process
//	3   while not end of game
//	4     for m in all possible moves
//	5       p = play(position, m)
//	6       send self id and number of moves played in p to dispatcher
//	7       receive client from dispatcher
//	8       send p to client
//	9     for m in all possible moves
//	10      receive score from client
//	11    position = play(position, move with best score)
//	12  send score to root
//
// The median plays a whole level-(ℓ−1) game: every candidate move is
// evaluated by a client running a level-(ℓ−2) nested rollout. Medians do no
// heavy computation themselves (§IV: "they are not used for long
// computation"); their metered work is just cloning and playing.
func runMedian(c mpi.Comm, lay cluster.Layout, cfg *Config) {
	var moves []game.Move
	var pool core.StatePool
	var shipped []game.State // this step's job positions, by move index
	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagPosition:
			// fall through to play the game below
		default:
			// Stray message from a previous game (cannot happen with the
			// current protocol; defensive skip keeps the loop alive).
			continue
		}

		st := msg.Payload.(game.State)
		root := msg.From

		for {
			moves = st.LegalMoves(moves[:0])
			if len(moves) == 0 {
				break
			}

			// Request a client per candidate and ship the position
			// (lines 4–8). The request carries the child's move count:
			// the Last-Minute dispatcher uses it to order pending jobs by
			// expected remaining work.
			queues := make(map[mpi.Rank][]int, len(moves))
			shipped = shipped[:0]
			for i, m := range moves {
				child := pool.Get(st)
				c.Work(core.CloneCost)
				child.Play(m)
				c.Work(1)
				shipped = append(shipped, child)

				cfg.trace("b", c.Rank(), lay.Dispatcher, c.Now())
				c.Send(lay.Dispatcher, tagRequest, child.MovesPlayed())
				asg := c.Recv(lay.Dispatcher, tagAssign)
				client := asg.Payload.(mpi.Rank)

				cfg.trace("b", c.Rank(), client, c.Now())
				c.Send(client, tagJob, child)
				queues[client] = append(queues[client], i)
			}

			// Gather the scores (lines 9–10); per-client FIFO pairing, as
			// in the root.
			scores := make([]float64, len(moves))
			for range moves {
				r := c.Recv(mpi.AnyRank, tagResult)
				q := queues[r.From]
				scores[q[0]] = r.Payload.(float64)
				pool.Put(shipped[q[0]])
				queues[r.From] = q[1:]
			}

			best := 0
			for i := 1; i < len(scores); i++ {
				if scores[i] > scores[best] {
					best = i
				}
			}
			st.Play(moves[best])
			c.Work(1)
		}

		// Line 12: report the finished game's score to the root.
		cfg.trace("d", c.Rank(), root, c.Now())
		c.Send(root, tagScore, st.Score())
	}
}
