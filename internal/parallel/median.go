package parallel

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// median is the per-process state of a median node.
type median struct {
	c     mpi.Comm
	lay   cluster.Layout
	cfg   *Config
	idle  time.Duration // cumulative Recv-blocked time
	moves []game.Move
	pool  core.StatePool
	// shipped holds this step's job positions, by move index.
	shipped []game.State
	scores  []float64
}

// recv wraps Comm.Recv with idle-time accounting: every virtual (or wall)
// nanosecond a median spends blocked — waiting for a candidate, for a
// dispatcher assignment, or for client results — is idle capacity.
func (m *median) recv(from mpi.Rank, tag mpi.Tag) mpi.Msg {
	t0 := m.c.Now()
	msg := m.c.Recv(from, tag)
	m.idle += m.c.Now() - t0
	return msg
}

// runMedian is the paper's median process (§IV-A pseudocode):
//
//	1 while true
//	2   receive position from root process
//	3   while not end of game
//	4     for m in all possible moves
//	5       p = play(position, m)
//	6       send self id and number of moves played in p to dispatcher
//	7       receive client from dispatcher
//	8       send p to client
//	9     for m in all possible moves
//	10      receive score from client
//	11    position = play(position, move with best score)
//	12  send score to root
//
// The median plays a whole level-(ℓ−1) game: every candidate move is
// evaluated by a client running a level-(ℓ−2) nested rollout. Medians do no
// heavy computation themselves (§IV: "they are not used for long
// computation"); their metered work is just cloning and playing.
//
// Under the pull scheduler the median additionally *asks* for line 2's
// position: it keeps Config.Prefetch work requests (q) in flight with the
// root, so the next grant travels while the current game is being played,
// and reports scores tagged with their candidate index. Under Config.Static
// positions are pushed to it and scores are bare floats answered in FIFO
// order, exactly as in the paper.
func runMedian(c mpi.Comm, lay cluster.Layout, cfg *Config, index int, coll *collector) {
	m := &median{c: c, lay: lay, cfg: cfg}
	defer func() { coll.setMedianIdle(index, m.idle) }()

	pull := !cfg.Static
	outstanding := 0
	request := func() {
		cfg.trace("q", c.Rank(), lay.Root, c.Now())
		c.Send(lay.Root, tagWorkReq, nil)
		outstanding++
	}
	if pull {
		request()
	}

	for {
		msg := m.recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagPosition:
			// fall through to play the game below
		default:
			// Stray message from a previous game (cannot happen with the
			// current protocol; defensive skip keeps the loop alive).
			continue
		}

		cand := msg.Payload.(candidate)
		if pull {
			outstanding--
			// Prefetch: keep the request window full before starting the
			// game, so the root can ship the next candidate while this one
			// is being played.
			for outstanding < cfg.prefetch() {
				request()
			}
		}

		score := m.playGame(cand)

		// Line 12: report the finished game's score to the root.
		cfg.trace("d", c.Rank(), lay.Root, c.Now())
		if pull {
			c.Send(lay.Root, tagScore, stepScore{Step: cand.Step, Cand: cand.Cand, Par: cand.Par, Score: score})
			if outstanding == 0 {
				// Prefetch disabled: only now ask for the next candidate.
				request()
			}
		} else {
			c.Send(msg.From, tagScore, score)
		}
	}
}

// playGame plays the median's full level-(ℓ−1) game from the received
// candidate position (pseudocode lines 3–11) and returns its final score.
// Client jobs are keyed by their logical coordinates — (root step, root
// candidate, median step, median candidate) — so the resulting scores are
// independent of which client executes them and of scheduling order; the
// result messages carry the candidate index, removing any pairing
// bookkeeping.
func (m *median) playGame(cand candidate) float64 {
	st := cand.State
	c, cfg, lay := m.c, m.cfg, m.lay
	for t := 0; ; t++ {
		m.moves = st.LegalMoves(m.moves[:0])
		if len(m.moves) == 0 {
			break
		}

		// Request a client per candidate and ship the position
		// (lines 4–8). The request carries the child's move count:
		// the Last-Minute dispatcher uses it to order pending jobs by
		// expected remaining work.
		m.shipped = m.shipped[:0]
		m.scores = m.scores[:0]
		for j, mv := range m.moves {
			child := m.pool.Get(st)
			c.Work(core.CloneCost)
			child.Play(mv)
			c.Work(1)
			m.shipped = append(m.shipped, child)
			m.scores = append(m.scores, 0)

			cfg.trace("b", c.Rank(), lay.Dispatcher, c.Now())
			c.Send(lay.Dispatcher, tagRequest, child.MovesPlayed())
			asg := m.recv(lay.Dispatcher, tagAssign)
			client := asg.Payload.(mpi.Rank)

			cfg.trace("b", c.Rank(), client, c.Now())
			key := rng.Fold(uint64(cand.Step), uint64(cand.Cand), uint64(t), uint64(j))
			c.Send(client, tagJob, job{Key: key, Seq: j, State: child})
		}

		// Gather the scores (lines 9–10), indexed by candidate. Each
		// received score releases the position it answers.
		for range m.moves {
			r := m.recv(mpi.AnyRank, tagResult)
			js := r.Payload.(jobScore)
			m.scores[js.Seq] = js.Score
			m.pool.Put(m.shipped[js.Seq])
		}

		st.Play(m.moves[argmax(m.scores)])
		c.Work(1)
	}
	return st.Score()
}
