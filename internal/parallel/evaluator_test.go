package parallel

// Evaluator acceptance tests — the contract of the pluggable rollout
// backend:
//
//   - nil evaluator is bit-identical to the pre-evaluator code (golden
//     results pinned below, captured before the Evaluator field existed);
//   - a guided job returns the same result solo (direct, unbatched
//     evaluation), on a wall pool and on a net pool (both batched): batching
//     and transport never change results;
//   - a worker killed with evaluation batches in flight does not change the
//     result either (re-issued rollouts replay the same rng keys and the
//     pure evaluator re-scores identically);
//   - unregistered names are rejected at submission, on every entry point.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/morpion"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// goldenNil pins the nil-evaluator results for the three reference
// configs. The values were recorded before the Evaluator option existed;
// the uniform path must keep drawing the same rng stream forever.
var goldenNil = []struct {
	name      string
	cfg       func() Config
	score     float64
	steps     int
	jobs      int64
	workUnits int64
}{
	{
		name: "morpion",
		cfg: func() Config {
			return Config{Level: 2, Root: morpion.New(morpion.Var4D), Seed: 11, Memorize: true, FirstMoveOnly: true}
		},
		score: 33, steps: 1, jobs: 16446, workUnits: 254341,
	},
	{
		name: "samegame",
		cfg: func() Config {
			return Config{Level: 2, Root: samegame.NewRandom(5, 5, 3, 3), Seed: 5, Memorize: true}
		},
		score: 1023, steps: 8, jobs: 185, workUnits: 508,
	},
	{
		name: "sudoku",
		cfg: func() Config {
			return Config{Level: 2, Root: sudoku.New(2), Seed: 7}
		},
		score: 16, steps: 16, jobs: 311, workUnits: 1723,
	},
}

// TestNilEvaluatorGolden is the backwards-compatibility pin: a config with
// no evaluator must reproduce the recorded pre-evaluator results exactly —
// score, step count and the full rollout accounting.
func TestNilEvaluatorGolden(t *testing.T) {
	for _, g := range goldenNil {
		t.Run(g.name, func(t *testing.T) {
			res, err := RunWall(4, 3, g.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != g.score || res.Steps != g.steps ||
				res.Jobs != g.jobs || res.WorkUnits != g.workUnits {
				t.Fatalf("nil-evaluator run diverged from pre-evaluator golden:\n got %+v\nwant score=%v steps=%d jobs=%d units=%d",
					res, g.score, g.steps, g.jobs, g.workUnits)
			}
		})
	}
}

// TestEvaluatorEquivalence runs every domain with the heuristic evaluator
// solo (direct evaluation in the client), on an in-process pool and on a
// distributed pool (both batched): all three must agree bit-for-bit. The
// pool batch shape is deliberately smaller than the rollout concurrency so
// size flushes actually happen; the short deadline keeps straggler batches
// from serializing the test.
func TestEvaluatorEquivalence(t *testing.T) {
	poolShape := PoolConfig{
		Slots: 2, Medians: 2, Clients: 3,
		EvalBatch: 2, EvalFlush: 100 * time.Microsecond,
	}
	pool, err := NewNetPool(poolShape, NetPoolConfig{Listen: "127.0.0.1:0", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wait := startNetWorkers(t, pool.WorkerAddr(), 2)

	wallPool, err := NewPool(poolShape)
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range goldenNil {
		t.Run(g.name, func(t *testing.T) {
			cfg := g.cfg()
			cfg.Evaluator = "heuristic"
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			walled, err := wallPool.RunJob(0, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			netted, err := pool.RunJob(0, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "wall pool (batched) vs solo (direct)", walled, solo)
			assertSameResult(t, "net pool (batched) vs solo (direct)", netted, solo)
		})
	}

	// The wall pool hosts every client in this process, so its batcher must
	// have seen the evaluations — and with batch size 2 under 3 concurrent
	// rollouts, at least one flush must have filled.
	m := wallPool.Metrics()
	if m.EvalRequests == 0 || m.EvalBatches == 0 {
		t.Fatalf("wall pool batcher saw no evaluations: %+v", m)
	}
	if m.EvalFlushSize == 0 {
		t.Fatalf("no size-triggered flush despite batch 2 under 3 clients: %+v", m)
	}
	if m.EvalBatchMax < 2 {
		t.Fatalf("batch never filled: %+v", m)
	}
	if m.EvalFlushSize+m.EvalFlushDeadline != m.EvalBatches {
		t.Fatalf("flush triggers do not add up: %+v", m)
	}

	wallPool.Shutdown()
	pool.Shutdown()
	wait()
}

// TestChaosKillEvaluatorBatch kills a worker while evaluation batches are
// in flight on its client ranks. The re-issued rollouts replay the same
// coordinate-keyed rng streams through a fresh batcher on the replacement
// worker, so the result must still match the undisturbed solo run.
func TestChaosKillEvaluatorBatch(t *testing.T) {
	cfg := Config{
		Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5,
		Memorize: true, Evaluator: "heuristic",
	}
	solo, err := RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 hosts medians and a client: the kill loses granted
	// candidates and in-flight evaluation batches at once.
	res, m := chaosRun(t, cfg, 0)
	assertSameResult(t, "chaos kill mid-batch vs solo", res, solo)
	if m.WorkersLost < 1 || m.WorkersRejoined < 1 {
		t.Fatalf("churn not recorded: %+v", m)
	}
}

// TestEvalBatchClampedToClients pins the concurrency cap: a batch size
// beyond the client ranks a process hosts could never fill (each client
// submits one position at a time), so every evaluation would serialize on
// the flush deadline. The pool must clamp, and after a guided job the
// batcher must show size-triggered flushes — impossible at the requested
// size of 64 under 2 clients.
func TestEvalBatchClampedToClients(t *testing.T) {
	pool, err := NewPool(PoolConfig{
		Slots: 1, Medians: 1, Clients: 2,
		EvalBatch: 64, EvalFlush: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()
	if got := pool.batch.size; got != 2 {
		t.Fatalf("batch size not clamped to hosted clients: got %d, want 2", got)
	}

	cfg := Config{
		Level: 2, Root: samegame.NewRandom(5, 5, 3, 3), Seed: 5,
		Memorize: true, Evaluator: "heuristic",
	}
	solo, err := RunWall(4, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "clamped pool vs solo", res, solo)

	m := pool.Metrics()
	if m.EvalFlushSize == 0 {
		t.Fatalf("no size-triggered flush: clamp not effective, batcher ran deadline-only: %+v", m)
	}
	if m.EvalBatchMax > 2 {
		t.Fatalf("batch exceeded hosted client count: %+v", m)
	}
}

// TestUnknownEvaluatorRejected pins submission-time validation on both
// entry points: a job naming an unregistered evaluator must fail fast, not
// run with silently uniform playouts.
func TestUnknownEvaluatorRejected(t *testing.T) {
	cfg := Config{Level: 2, Root: sudoku.New(2), Seed: 7, Evaluator: "no-such-evaluator"}
	if _, err := RunWall(4, 3, cfg); err == nil || !strings.Contains(err.Error(), "no-such-evaluator") {
		t.Fatalf("RunWall accepted unknown evaluator: %v", err)
	}
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 1, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()
	if _, err := pool.StartJob(0, cfg, nil); err == nil || !strings.Contains(err.Error(), "no-such-evaluator") {
		t.Fatalf("pool accepted unknown evaluator: %v", err)
	}
}
