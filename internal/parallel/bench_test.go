package parallel

// Microbenchmarks of the parallel layer on the virtual transport. Real
// time here is dominated by the discrete-event simulation, so ns/op tracks
// the scheduling and protocol overhead per run; the custom metrics carry
// the quantities the schedulers compete on:
//
//	vsec          virtual makespan of the run, in seconds
//	midle_pct     mean median idle percentage (load imbalance signal)
//	cidle_pct     mean client idle percentage
//	qdepth        mean ready-queue depth at the root (pull only)
//
// These flow into the CI benchmark artifact (cmd/benchreg), which fails on
// ns/op regressions against the committed baseline.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/samegame"
	"repro/internal/stats"
	"repro/internal/vtime"
)

// benchRun executes one first-move run and reports the custom metrics.
func benchRun(b *testing.B, spec cluster.Spec, static bool, medians int, unitCost time.Duration) {
	b.Helper()
	cfg := Config{
		Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 3, Memorize: true, FirstMoveOnly: true, Static: static,
	}
	opts := VirtualOptions{UnitCost: unitCost, Medians: medians}
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := RunVirtual(spec, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportIdle(b, last)
}

func reportIdle(b *testing.B, res Result) {
	b.Helper()
	b.ReportMetric(res.Elapsed.Seconds(), "vsec")
	b.ReportMetric(100*stats.MeanFraction(res.MedianIdle, res.Elapsed), "midle_pct")
	b.ReportMetric(100*stats.MeanFraction(res.ClientIdle, res.Elapsed), "cidle_pct")
	b.ReportMetric(res.QueueDepthMean, "qdepth")
}

// BenchmarkStaticFirstMove is the paper's scheduler: candidates pushed to
// medians in cyclic order.
func BenchmarkStaticFirstMove(b *testing.B) {
	benchRun(b, cluster.Homogeneous(16), true, 8, time.Microsecond)
}

// BenchmarkPullFirstMove is the demand-driven scheduler on the identical
// homogeneous cluster: same game, pull protocol overhead on top.
func BenchmarkPullFirstMove(b *testing.B) {
	benchRun(b, cluster.Homogeneous(16), false, 8, time.Microsecond)
}

// BenchmarkPullStraggler is the heterogeneous case the pull scheduler
// exists for: one 2×-slow median. vsec (virtual makespan) is the metric
// that must beat BenchmarkStaticStraggler's; ns/op only tracks simulation
// overhead.
func BenchmarkPullStraggler(b *testing.B) {
	benchRun(b, cluster.Homogeneous(64).WithSlowMedian(0, 0.5), false, 6, time.Millisecond)
}

// BenchmarkStaticStraggler is the static baseline on the straggler
// cluster.
func BenchmarkStaticStraggler(b *testing.B) {
	benchRun(b, cluster.Homogeneous(64).WithSlowMedian(0, 0.5), true, 6, time.Millisecond)
}

// BenchmarkAsyncRoot measures the pipelined root (Config.Speculate) on
// the straggler cluster over a whole multi-step game — necessarily
// multi-step, because speculation cannot shorten a single step: it
// overlaps the straggler's step tail with the next step's head, so its
// win only exists at step boundaries. steplat_ms (mean per-step latency,
// Result.StepLatency) is the metric that must beat the synchronous pull
// root's on this cluster (the k=0 row of the harness straggler
// ablation); waste_pct is the price paid for it, the fraction of jobs
// charged to losing speculative branches.
func BenchmarkAsyncRoot(b *testing.B) {
	cfg := Config{
		Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 3, Memorize: true, JobScale: 1, Speculate: 2,
	}
	spec := cluster.Homogeneous(64).WithSlowMedian(0, 0.5)
	opts := VirtualOptions{UnitCost: time.Millisecond, Medians: 6}
	var last Result
	for i := 0; i < b.N; i++ {
		res, err := RunVirtual(spec, cfg, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportIdle(b, last)
	var sum time.Duration
	for _, d := range last.StepLatency {
		sum += d
	}
	if n := len(last.StepLatency); n > 0 {
		b.ReportMetric(1e3*(sum/time.Duration(n)).Seconds(), "steplat_ms")
	}
	if last.Jobs > 0 {
		b.ReportMetric(100*float64(last.SpecWasted)/float64(last.Jobs), "waste_pct")
	}
}

// BenchmarkWallPull measures the pull protocol natively on goroutines.
func BenchmarkWallPull(b *testing.B) {
	cfg := Config{
		Algo: LastMinute, Level: 2, Root: morpion.New(morpion.Var4D),
		Seed: 3, Memorize: true, FirstMoveOnly: true,
	}
	for i := 0; i < b.N; i++ {
		if _, err := RunWall(4, 8, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedRollout measures the evaluation batcher on its intended
// load: `size` concurrent rollouts each submitting one position per
// iteration, so flush-on-size dominates and ns/op is the cost of one full
// batch (submission sync + heuristic evaluation of size positions). The
// batch_avg metric confirms the batches actually filled.
func BenchmarkBatchedRollout(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch%d", size), func(b *testing.B) {
			batcher := newEvalBatcher(size, time.Millisecond, vtime.Wall())
			ev := batcher.evaluatorFor(game.HeuristicEvaluatorName)
			reqs := make([]game.EvalRequest, size)
			for i := range reqs {
				st := samegame.NewRandom(8, 8, 4, uint64(i+1)).Clone()
				reqs[i] = game.EvalRequest{State: st, Moves: st.LegalMoves(nil)}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < size; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var w []float64
					for i := 0; i < b.N; i++ {
						w = ev.Evaluate(reqs[g], w[:0])
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			if s := batcher.snapshot(); s.Batches > 0 {
				b.ReportMetric(float64(s.Requests)/float64(s.Batches), "batch_avg")
			}
		})
	}
}
