package parallel

import (
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// collector aggregates per-rank statistics. Guarded by a mutex because
// the wall transport runs processes concurrently (the virtual transport is
// single-stepped, where the mutex is uncontended).
type collector struct {
	mu         sync.Mutex
	jobs       int64
	units      int64
	busy       []time.Duration
	clientIdle []time.Duration
	medianIdle []time.Duration
}

func (co *collector) add(client int, units int64, busy time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.jobs++
	co.units += units
	co.busy[client] += busy
}

func (co *collector) setClientIdle(client int, idle time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.clientIdle[client] = idle
}

func (co *collector) setMedianIdle(median int, idle time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.medianIdle[median] = idle
}

// unitMeter accumulates the work units of one job.
type unitMeter struct{ units int64 }

func (u *unitMeter) Add(n int64) { u.units += n }

// runClient is the paper's client process (§IV-A pseudocode):
//
//	1 while true
//	2   receive position from median node
//	3   score = nestedRollout(position, level)
//	4   if LastMinute: send self node to dispatcher
//	5   send score to median node
//
// The client performs the real computation: a nested rollout at level ℓ−2.
// Work units metered by the search are charged to the transport, which is
// what makes a slow (oversubscribed or low-GHz) node take proportionally
// longer on the virtual cluster. The availability notice (line 4) is sent
// before the score, exactly as in the paper, so the dispatcher learns of
// the free client as early as possible; under the pull scheduler every
// client announces (the demand dispatcher is availability-driven for both
// policies), under Config.Static only Last-Minute clients do.
//
// The rollout's random stream is reseeded per job from the job's logical
// coordinates (job.Key), so the score of a given candidate is identical no
// matter which client executes it or in which order — the property the
// static-vs-pull equivalence tests pin down.
// tc is the run's shared transposition cache, nil when Config.Cache is
// off (the cache-off path must stay bit-identical to before the cache
// existed).
func runClient(c mpi.Comm, lay cluster.Layout, cfg *Config, index int, coll *collector, tc *cache.Cache) {
	meter := &unitMeter{}
	r := rng.New(cfg.Seed) // reseeded per job via SeedStream
	// The per-run evaluator is constructed directly, without batching: a
	// run's clients live in this process and evaluate inline, and the
	// virtual transport's single-stepped scheduling leaves nothing to
	// batch. Execute validated the name; an unknown one (impossible
	// there) would fall back to uniform playouts.
	var eval game.Evaluator
	if cfg.Evaluator != "" {
		eval, _ = game.NewEvaluator(cfg.Evaluator)
	}
	searcher := core.NewSearcher(r, core.Options{Meter: meter, Memorize: cfg.Memorize, Evaluator: eval})
	if tc != nil {
		searcher.SetCache(tc, cache.Scope(cfg.Evaluator, cfg.Memorize, 0), cfg.CacheVerify)
	}
	level := cfg.Level - 2
	announce := !cfg.Static || cfg.Algo == LastMinute
	var idle time.Duration
	defer func() { coll.setClientIdle(index, idle) }()

	for {
		t0 := c.Now()
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		idle += c.Now() - t0
		switch msg.Tag {
		case tagShutdown:
			return
		case tagJob:
			jb := msg.Payload.(job)
			median := msg.From

			start := c.Now()
			meter.units = 0
			r.SeedStream(cfg.Seed, jb.Key)
			var res core.Result
			if tc != nil {
				res = searcher.NestedCached(jb.State, level)
			} else {
				res = searcher.Nested(jb.State, level)
			}
			c.Work(meter.units * cfg.jobScale()) // charge the rollout's CPU to this node
			busy := c.Now() - start
			coll.add(index, meter.units, busy)

			if announce {
				cfg.trace("c'", c.Rank(), lay.Dispatcher, c.Now())
				c.Send(lay.Dispatcher, tagFree, nil)
			}
			cfg.trace("c", c.Rank(), median, c.Now())
			c.Send(median, tagResult, jobScore{Seq: jb.Seq, Score: res.Score})
		}
	}
}
