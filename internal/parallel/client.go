package parallel

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/mpi"
	"repro/internal/rng"
)

// collector aggregates per-client statistics. Guarded by a mutex because
// the wall transport runs clients concurrently (the virtual transport is
// single-stepped, where the mutex is uncontended).
type collector struct {
	mu    sync.Mutex
	jobs  int64
	units int64
	busy  []time.Duration
}

func (co *collector) add(client int, units int64, busy time.Duration) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.jobs++
	co.units += units
	co.busy[client] += busy
}

// unitMeter accumulates the work units of one job.
type unitMeter struct{ units int64 }

func (u *unitMeter) Add(n int64) { u.units += n }

// runClient is the paper's client process (§IV-A pseudocode):
//
//	1 while true
//	2   receive position from median node
//	3   score = nestedRollout(position, level)
//	4   if LastMinute: send self node to dispatcher
//	5   send score to median node
//
// The client performs the real computation: a nested rollout at level ℓ−2.
// Work units metered by the search are charged to the transport, which is
// what makes a slow (oversubscribed or low-GHz) node take proportionally
// longer on the virtual cluster. Under Last-Minute the availability notice
// is sent before the score, exactly as in the paper, so the dispatcher
// learns of the free client as early as possible.
func runClient(c mpi.Comm, lay cluster.Layout, cfg *Config, index int, coll *collector) {
	meter := &unitMeter{}
	searcher := core.NewSearcher(
		rng.NewStream(cfg.Seed, uint64(c.Rank())),
		core.Options{Meter: meter, Memorize: cfg.Memorize},
	)
	level := cfg.Level - 2

	for {
		msg := c.Recv(mpi.AnyRank, mpi.AnyTag)
		switch msg.Tag {
		case tagShutdown:
			return
		case tagJob:
			st := msg.Payload.(game.State)
			median := msg.From

			start := c.Now()
			meter.units = 0
			res := searcher.Nested(st, level)
			c.Work(meter.units * cfg.jobScale()) // charge the rollout's CPU to this node
			busy := c.Now() - start
			coll.add(index, meter.units, busy)

			if cfg.Algo == LastMinute {
				cfg.trace("c'", c.Rank(), lay.Dispatcher, c.Now())
				c.Send(lay.Dispatcher, tagFree, nil)
			}
			cfg.trace("c", c.Rank(), median, c.Now())
			c.Send(median, tagResult, res.Score)
		}
	}
}
