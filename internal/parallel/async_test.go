package parallel

// The async pipelined root's acceptance contract. Speculation is pure
// scheduling: the root guesses which move will win the current step's
// argmax and dispatches the next step's candidates for the top
// Config.Speculate leaders before the last scores arrive. Because client
// rollout rng is keyed by logical job coordinates — (step, candidate,
// median step, median candidate) — a speculative rollout that is adopted
// computed exactly what the synchronous root would have computed, and a
// wasted one is discarded without a trace. These tests pin that: async,
// pull and static play bit-identical games per seed on every domain, the
// pool's speculation cancels drain without parking ranks or leaking
// grants, and a worker killed mid-speculation still cannot change the
// answer. Run with -race in CI.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/morpion"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

// asyncCfgs are multi-step configs (FirstMoveOnly off — speculation only
// pipelines step boundaries, so a one-step game never speculates), one
// per domain.
func asyncCfgs() map[string]Config {
	return map[string]Config{
		"morpion":  {Level: 2, Root: morpion.New(morpion.Var4D), Seed: 11, Memorize: true},
		"samegame": {Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true},
		"sudoku":   {Level: 2, Root: sudoku.New(2), Seed: 7},
	}
}

// assertSameGame compares the played game only — Score, FirstMove, Steps,
// Sequence. The per-run async collector charges wasted speculative
// rollouts to Result.Jobs/WorkUnits (they really ran), so rollout
// accounting legitimately differs from the synchronous schedulers; the
// game must not.
func assertSameGame(t *testing.T, name string, got, want Result) {
	t.Helper()
	if got.Score != want.Score {
		t.Fatalf("%s: score %v != %v", name, got.Score, want.Score)
	}
	if got.FirstMove != want.FirstMove {
		t.Fatalf("%s: first move %v != %v", name, got.FirstMove, want.FirstMove)
	}
	if got.Steps != want.Steps {
		t.Fatalf("%s: steps %d != %d", name, got.Steps, want.Steps)
	}
	if len(got.Sequence) != len(want.Sequence) {
		t.Fatalf("%s: sequence lengths %d != %d", name, len(got.Sequence), len(want.Sequence))
	}
	for i := range got.Sequence {
		if got.Sequence[i] != want.Sequence[i] {
			t.Fatalf("%s: sequences differ at move %d", name, i)
		}
	}
}

// TestAsyncSchedulingInvariance is the tentpole invariant: per seed, the
// async pipelined root, the synchronous pull root and the paper's static
// root play the identical game on every domain. Virtual runs, so both
// sides of every speculation race are deterministic and the comparison is
// exact.
func TestAsyncSchedulingInvariance(t *testing.T) {
	spec := cluster.Homogeneous(8)
	opts := VirtualOptions{Medians: 3}
	for name, cfg := range asyncCfgs() {
		t.Run(name, func(t *testing.T) {
			static := cfg
			static.Static = true
			base, err := RunVirtual(spec, static, opts)
			if err != nil {
				t.Fatal(err)
			}
			pull, err := RunVirtual(spec, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameGame(t, "pull vs static", pull, base)
			for _, k := range []int{1, 2, 4} {
				acfg := cfg
				acfg.Speculate = k
				async, err := RunVirtual(spec, acfg, opts)
				if err != nil {
					t.Fatal(err)
				}
				assertSameGame(t, "async vs static", async, base)
				if async.Steps > 1 && async.Speculated == 0 {
					t.Fatalf("k=%d multi-step run never speculated", k)
				}
				if async.SpecWasted > 0 && async.Speculated == 0 {
					t.Fatalf("k=%d wasted %d rollouts without speculating", k, async.SpecWasted)
				}
				if len(async.StepLatency) != async.Steps {
					t.Fatalf("k=%d recorded %d step latencies for %d steps", k, len(async.StepLatency), async.Steps)
				}
			}
		})
	}
}

// TestAsyncStopCancelled pins the Stop path: a StopAfter-truncated async
// run terminates cleanly — every speculative branch purged, every
// outstanding grant drained, no median left parked — and plays a strict
// prefix of the unstopped run's game. (Bit-identity across schedulers is
// not defined mid-cancel: the stop lands at a scheduler-dependent virtual
// time, so the truncation point itself differs; the invariant is that
// everything played before it matches.)
func TestAsyncStopCancelled(t *testing.T) {
	spec := cluster.Homogeneous(8)
	opts := VirtualOptions{Medians: 3}
	cfg := asyncCfgs()["samegame"]
	cfg.Speculate = 2

	full, err := RunVirtual(spec, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Steps < 3 {
		t.Fatalf("full game too short to truncate: %d steps", full.Steps)
	}

	// Stop mid-game: half the full run's virtual span lands between step
	// boundaries with speculation in flight.
	cfg.StopAfter = full.Elapsed / 2
	stopped, err := RunVirtual(spec, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stopped.Stopped {
		t.Fatal("StopAfter run did not report Stopped")
	}
	if stopped.Steps >= full.Steps {
		t.Fatalf("stopped run played %d steps, full game only %d", stopped.Steps, full.Steps)
	}
	if len(stopped.Sequence) != stopped.Steps {
		t.Fatalf("stopped run: %d moves for %d steps", len(stopped.Sequence), stopped.Steps)
	}
	for i := range stopped.Sequence {
		if stopped.Sequence[i] != full.Sequence[i] {
			t.Fatalf("stopped run diverged from full game at move %d", i)
		}
	}
}

// TestPoolAsyncMatchesSolo runs speculating jobs on the shared pool and
// requires them bit-identical to solo RunWall — including Jobs and
// WorkUnits, because the pool path only charges a speculative branch's
// rollouts to the job when the branch is adopted (wasted ones are
// reported separately in SpecWasted).
func TestPoolAsyncMatchesSolo(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 2, Medians: 3, Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	speculated := false
	for name, cfg := range asyncCfgs() {
		t.Run(name, func(t *testing.T) {
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			acfg := cfg
			acfg.Speculate = 2
			res, err := pool.RunJob(0, acfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "pool async vs solo", res, solo)
			if res.Speculated > 0 {
				speculated = true
			}
			if len(res.StepLatency) != res.Steps {
				t.Fatalf("%d step latencies for %d steps", len(res.StepLatency), res.Steps)
			}
		})
	}
	if !speculated {
		t.Fatal("no pool job ever speculated; the async path was not exercised")
	}
	if m := pool.Metrics(); m.Speculated == 0 || m.StepCount == 0 {
		t.Fatalf("pool metrics missed the async jobs: %+v", m)
	}
}

// TestPoolAsyncConcurrentJobs drives every slot at once, speculating and
// synchronous jobs interleaved on the same medians: per-slot speculation
// cancels must never leak across jobs.
func TestPoolAsyncConcurrentJobs(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 3, Medians: 2, Clients: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfgs := []Config{
		{Level: 2, Root: sudoku.New(2), Seed: 7, Speculate: 2},
		{Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true},
		{Level: 2, Root: game.NewArmTree(3, 2, 5), Seed: 2, Memorize: true, Speculate: 1},
	}
	results := make([]Result, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(slot int, cfg Config) {
			defer wg.Done()
			res, err := pool.RunJob(slot, cfg, nil)
			if err != nil {
				t.Errorf("slot %d: %v", slot, err)
				return
			}
			results[slot] = res
		}(i, cfg)
	}
	wg.Wait()
	for i, cfg := range cfgs {
		cfg.Speculate = 0
		solo, err := RunWall(4, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "concurrent async job", results[i], solo)
	}
}

// TestPoolAsyncCancelDrains cancels a speculating job mid-game and then
// reuses the slot: the cancel must purge the scheduler's speculative
// grants and un-park every median (an aborted branch game must not leave
// a rank waiting on a dispatcher assignment), or the follow-up job would
// hang or diverge.
func TestPoolAsyncCancelDrains(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	long := Config{Level: 2, Root: morpion.New(morpion.Var5D), Seed: 3, Memorize: true, Speculate: 2}
	done := make(chan Result, 1)
	started := make(chan struct{})
	var once sync.Once
	go func() {
		res, err := pool.RunJob(0, long, func(Progress) { once.Do(func() { close(started) }) })
		if err != nil {
			t.Errorf("cancelled job errored: %v", err)
		}
		done <- res
	}()
	<-started // a step boundary passed: speculation has been offered
	pool.CancelJob(0)
	res := <-done
	if !res.Stopped {
		t.Fatal("cancelled async job did not report Stopped")
	}

	// The same slot must serve a synchronous job bit-identically: stale
	// speculative candidates or a parked median would break this.
	short := Config{Level: 2, Root: samegame.NewRandom(6, 6, 3, 3), Seed: 5, Memorize: true}
	solo, err := RunWall(2, 2, short)
	if err != nil {
		t.Fatal(err)
	}
	again, err := pool.RunJob(0, short, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "job after async cancel", again, solo)
	if again.Stopped {
		t.Fatal("follow-up job inherited the cancellation")
	}
}

// TestChaosKillMidSpeculation kills a worker while the surviving job is
// speculating — its grants include next-step candidates for branches
// whose argmax has not resolved — and requires the finished job
// bit-identical to solo. A dead worker's speculative grants are re-queued
// unless a cancel already covered them; a resurrected winner grant must
// still produce its score.
func TestChaosKillMidSpeculation(t *testing.T) {
	for name, cfg := range asyncCfgs() {
		t.Run(name, func(t *testing.T) {
			solo, err := RunWall(4, 3, cfg)
			if err != nil {
				t.Fatal(err)
			}
			acfg := cfg
			acfg.Speculate = 2
			res, m := chaosRun(t, acfg, 0)
			assertSameResult(t, "chaos kill mid-speculation vs solo", res, solo)
			if m.WorkersLost < 1 || m.WorkersRejoined < 1 {
				t.Fatalf("churn not recorded: %+v", m)
			}
			if res.Speculated == 0 {
				t.Fatal("chaos run never speculated; the race was not exercised")
			}
		})
	}
}

// TestPoolSpeculateDefault pins the config plumbing: a pool-wide
// PoolConfig.Speculate default applies to jobs that leave
// Config.Speculate zero, and a job's negative Speculate opts back out.
func TestPoolSpeculateDefault(t *testing.T) {
	pool, err := NewPool(PoolConfig{Slots: 1, Medians: 2, Clients: 2, Speculate: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Shutdown()

	cfg := Config{Level: 2, Root: sudoku.New(2), Seed: 7}
	inherit, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inherit.Speculated == 0 {
		t.Fatal("job did not inherit the pool's speculation default")
	}
	cfg.Speculate = -1
	forced, err := pool.RunJob(0, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Speculated != 0 {
		t.Fatalf("Speculate=-1 job still speculated %d times", forced.Speculated)
	}
	solo, err := RunWall(2, 2, Config{Level: 2, Root: sudoku.New(2), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "inherited speculation vs solo", inherit, solo)
	assertSameResult(t, "opted-out job vs solo", forced, solo)
}

// TestAsyncStepLatencyRecorded pins the satellite metric on the
// synchronous path too: every scheduler records one latency per root
// step, and the pool accumulates them.
func TestAsyncStepLatencyRecorded(t *testing.T) {
	spec := cluster.Homogeneous(8)
	cfg := asyncCfgs()["sudoku"]
	for _, static := range []bool{true, false} {
		c := cfg
		c.Static = static
		res, err := RunVirtual(spec, c, VirtualOptions{Medians: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.StepLatency) != res.Steps {
			t.Fatalf("static=%v: %d latencies for %d steps", static, len(res.StepLatency), res.Steps)
		}
		var sum time.Duration
		for _, d := range res.StepLatency {
			if d <= 0 {
				t.Fatalf("static=%v: non-positive step latency %v", static, d)
			}
			sum += d
		}
		if sum > res.Elapsed {
			t.Fatalf("static=%v: step latencies sum %v beyond elapsed %v", static, sum, res.Elapsed)
		}
	}
}
