package parallel

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/mpi"
)

// VirtualOptions tune the virtual transport used by RunVirtual.
type VirtualOptions struct {
	// UnitCost overrides the virtual cost of one work unit on a speed-1.0
	// node; zero keeps mpi.DefaultUnitCost.
	UnitCost time.Duration
	// Network overrides the interconnect model; the zero value selects
	// mpi.DefaultNetwork.
	Network mpi.NetworkModel
	// Medians sets the number of median processes; zero selects the
	// paper's 40.
	Medians int
}

// PaperMedians is the number of median processes the paper runs on the
// server (§V: "we run the 40 median processes on the server").
const PaperMedians = 40

// RunVirtual executes cfg on a simulated cluster described by spec and
// returns the result with the virtual makespan in Result.Elapsed. Runs are
// deterministic in (spec, cfg, opts).
func RunVirtual(spec cluster.Spec, cfg Config, opts VirtualOptions) (Result, error) {
	medians := opts.Medians
	if medians == 0 {
		medians = PaperMedians
	}
	lay := spec.Layout(medians)
	network := opts.Network
	if network == (mpi.NetworkModel{}) {
		network = mpi.DefaultNetwork()
	}
	vc := mpi.NewVirtualCluster(mpi.VirtualConfig{
		Speeds:   lay.Speeds,
		UnitCost: opts.UnitCost,
		Network:  network,
	})
	return Execute(vc, lay, cfg)
}

// RunWall executes cfg natively on goroutines: nClients client goroutines
// plus root, dispatcher and medians. Result.Elapsed is real wall time.
func RunWall(nClients, medians int, cfg Config) (Result, error) {
	if medians == 0 {
		medians = PaperMedians
	}
	lay := cluster.Homogeneous(nClients).Layout(medians)
	wc := mpi.NewWallCluster(lay.Size())
	return Execute(wc, lay, cfg)
}
