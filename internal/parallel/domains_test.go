package parallel

// The parallel search is written against game.State only; these tests run
// the full cluster protocol on the two companion domains, proving the
// paper's architecture is domain-independent (its §III notes the score
// "can be computed completely differently" in other games).

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/samegame"
	"repro/internal/sudoku"
)

func TestParallelSameGame(t *testing.T) {
	board := samegame.NewRandom(8, 8, 4, 3)
	cfg := Config{
		Algo: LastMinute, Level: 2, Root: board, Seed: 5, Memorize: true,
	}
	res, err := RunVirtual(cluster.Homogeneous(8), cfg, VirtualOptions{
		UnitCost: time.Microsecond, Medians: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("parallel SameGame scored %v", res.Score)
	}
	// Replay the root's game to confirm the reported score.
	replay := board.Clone()
	for _, m := range res.Sequence {
		replay.Play(m)
	}
	if replay.Score() != res.Score {
		t.Fatalf("replayed %v != reported %v", replay.Score(), res.Score)
	}
	t.Logf("parallel SameGame: score %.0f in %d moves, %d jobs", res.Score, len(res.Sequence), res.Jobs)
}

func TestParallelSudoku(t *testing.T) {
	grid := sudoku.New(2) // 4x4 grid keeps the test fast
	cfg := Config{
		Algo: RoundRobin, Level: 2, Root: grid, Seed: 7, Memorize: true,
	}
	res, err := RunVirtual(cluster.Homogeneous(4), cfg, VirtualOptions{
		UnitCost: time.Microsecond, Medians: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A level-2 search must fill the whole 4x4 grid (16 cells).
	if res.Score != 16 {
		t.Fatalf("parallel level-2 filled %v of 16 cells", res.Score)
	}
}

func TestParallelSudoku9x9(t *testing.T) {
	if testing.Short() {
		t.Skip("9x9 parallel sudoku in short mode")
	}
	grid := sudoku.New(3)
	cfg := Config{
		Algo: LastMinute, Level: 2, Root: grid, Seed: 12, Memorize: true,
	}
	res, err := RunVirtual(cluster.Homogeneous(8), cfg, VirtualOptions{
		UnitCost: time.Microsecond, Medians: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("parallel 9x9 sudoku: filled %v/81", res.Score)
	if res.Score < 81 {
		t.Fatalf("parallel level-2 filled only %v of 81 cells", res.Score)
	}
}
