package pnmcs_test

// Integration tests against the public facade: everything an external user
// of the library touches, wired end-to-end.

import (
	"context"
	"errors"
	"testing"
	"time"

	pnmcs "repro"
)

func TestFacadeSequentialSearch(t *testing.T) {
	s := pnmcs.NewSearcher(pnmcs.NewRand(1), pnmcs.DefaultSearchOptions())
	res := s.Nested(pnmcs.NewMorpion(pnmcs.Var4D), 1)
	if res.Score <= 0 || len(res.Sequence) != int(res.Score) {
		t.Fatalf("bad search result: %+v", res)
	}
	grid, err := pnmcs.RenderMorpionSequence(pnmcs.Var4D, res.Sequence)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) == 0 {
		t.Fatal("empty rendering")
	}
}

func TestFacadeAllVariants(t *testing.T) {
	for _, name := range []string{"5T", "5D", "4T", "4D"} {
		v, err := pnmcs.MorpionVariantByName(name)
		if err != nil {
			t.Fatal(err)
		}
		st := pnmcs.NewMorpion(v)
		if st.Terminal() {
			t.Fatalf("%s: initial position terminal", name)
		}
	}
}

func TestFacadeParallelVirtual(t *testing.T) {
	res, err := pnmcs.RunVirtual(pnmcs.Homogeneous(8), pnmcs.ParallelConfig{
		Algo: pnmcs.LastMinute, Level: 2, Root: pnmcs.NewMorpion(pnmcs.Var4D),
		Seed: 3, Memorize: true, FirstMoveOnly: true, JobScale: 100,
	}, pnmcs.VirtualOptions{Medians: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 || res.Elapsed <= 0 || res.Jobs == 0 {
		t.Fatalf("bad parallel result: %+v", res)
	}
}

func TestFacadeParallelWall(t *testing.T) {
	res, err := pnmcs.RunWall(2, 8, pnmcs.ParallelConfig{
		Algo: pnmcs.RoundRobin, Level: 2, Root: pnmcs.NewMorpion(pnmcs.Var4D),
		Seed: 5, Memorize: true, FirstMoveOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("bad wall result: %+v", res)
	}
}

func TestFacadeClusterSpecs(t *testing.T) {
	if pnmcs.PaperCluster().NumClients() != 64 {
		t.Fatal("paper cluster size wrong")
	}
	if pnmcs.Hetero16x4p16x2().NumClients() != 96 {
		t.Fatal("16x4+16x2 size wrong")
	}
	if pnmcs.Hetero8x4p8x2().NumClients() != 48 {
		t.Fatal("8x4+8x2 size wrong")
	}
	if pnmcs.Homogeneous(7).NumClients() != 7 {
		t.Fatal("homogeneous size wrong")
	}
}

func TestFacadeSameGame(t *testing.T) {
	s := pnmcs.NewSearcher(pnmcs.NewRand(2), pnmcs.DefaultSearchOptions())
	board := pnmcs.NewSameGameSized(8, 8, 4, 1)
	res := s.Nested(board, 1)
	if res.Score <= 0 {
		t.Fatalf("SameGame search scored %v", res.Score)
	}
}

func TestFacadeSudoku(t *testing.T) {
	s := pnmcs.NewSearcher(pnmcs.NewRand(2), pnmcs.DefaultSearchOptions())
	grid := pnmcs.NewSudoku(3)
	res := s.Nested(grid, 1)
	if res.Score <= 0 {
		t.Fatalf("Sudoku search filled %v cells", res.Score)
	}
	if !grid.Valid() {
		t.Fatal("grid violates constraints after search")
	}
}

func TestFacadeRandStreams(t *testing.T) {
	a := pnmcs.NewRandStream(1, 1)
	b := pnmcs.NewRandStream(1, 2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams correlated")
	}
}

func TestFacadeService(t *testing.T) {
	svc, err := pnmcs.NewService(pnmcs.ServiceConfig{Slots: 2, Medians: 2, Clients: 2, QueueLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()

	spec := pnmcs.JobSpec{Domain: "sudoku", Box: 2, Level: 2, Seed: 3, Memorize: true}
	id, err := svc.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Score != 16 {
		t.Fatalf("service job: state %s score %v", st.State, st.Score)
	}

	// The service result matches the one-shot RunWall API bit for bit.
	solo, err := pnmcs.RunWall(2, 2, pnmcs.ParallelConfig{
		Level: 2, Root: pnmcs.NewSudoku(2), Seed: 3, Memorize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != solo.Score || len(st.Sequence) != len(solo.Sequence) {
		t.Fatalf("service %v/%d != solo %v/%d", st.Score, len(st.Sequence), solo.Score, len(solo.Sequence))
	}
	for i := range st.Sequence {
		if st.Sequence[i] != solo.Sequence[i] {
			t.Fatalf("sequences differ at %d", i)
		}
	}
	if m := svc.Metrics(); m.Completed != 1 || m.Pool.Jobs == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestFacadeRouter drives the sharded plane through the facade: jobs
// placed across pools return bit-identical results to the single-pool
// Service, tenants over quota are shed with ErrTenantQuota, and the
// aggregate metrics carry the per-pool breakdown.
func TestFacadeRouter(t *testing.T) {
	rt, err := pnmcs.NewRouter(
		pnmcs.WithPools(2),
		pnmcs.WithSlots(1),
		pnmcs.WithPool(1, 2),
		pnmcs.WithQueueLimit(8),
		pnmcs.WithTenantQPS(0.001, 3), // burst 3, negligible refill
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rt.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()

	spec := pnmcs.JobSpec{Domain: "sudoku", Box: 2, Level: 2, Seed: 3, Memorize: true, Tenant: "t0"}
	var last pnmcs.JobStatus
	for i := 0; i < 3; i++ {
		id, err := rt.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if last, err = rt.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		if last.State != "done" || last.Score != 16 {
			t.Fatalf("router job %d: state %s score %v", i, last.State, last.Score)
		}
	}
	// The burst of 3 is spent and the refill rate is negligible: the 4th
	// submission is shed.
	if _, err := rt.Submit(context.Background(), spec); !errors.Is(err, pnmcs.ErrTenantQuota) {
		t.Fatalf("over-quota submit: %v, want ErrTenantQuota", err)
	}

	solo, err := pnmcs.RunWall(2, 1, pnmcs.ParallelConfig{
		Level: 2, Root: pnmcs.NewSudoku(2), Seed: 3, Memorize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Score != solo.Score || len(last.Sequence) != len(solo.Sequence) {
		t.Fatalf("router %v/%d != solo %v/%d", last.Score, len(last.Sequence), solo.Score, len(solo.Sequence))
	}

	m := rt.Metrics()
	if m.Completed != 3 || len(m.PerPool) != 2 || m.TenantShed != 1 {
		t.Fatalf("router metrics: completed %d pools %d shed %d", m.Completed, len(m.PerPool), m.TenantShed)
	}
}

// runServiceJob submits one spec and waits for the terminal status.
func runServiceJob(t *testing.T, svc *pnmcs.Service, spec pnmcs.JobSpec) pnmcs.JobStatus {
	t.Helper()
	id, err := svc.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job finished in state %s (%s)", st.State, st.Error)
	}
	return st
}

// TestFacadeOptions exercises the functional-options constructor: a
// service built with New must behave exactly like one built from the
// equivalent ServiceConfig, including the evaluator default and the
// per-job "uniform" opt-out.
func TestFacadeOptions(t *testing.T) {
	svc, err := pnmcs.New(
		pnmcs.WithSlots(2),
		pnmcs.WithPool(2, 3),
		pnmcs.WithQueueLimit(2),
		pnmcs.WithEvaluator(pnmcs.HeuristicEvaluatorName),
		pnmcs.WithEvalBatch(2),
		pnmcs.WithEvalFlush(100*time.Microsecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := svc.Shutdown(context.Background()); err != nil {
			t.Error(err)
		}
	}()

	// A spec naming no evaluator inherits the service default: the result
	// must match a solo guided run, not a solo uniform run.
	spec := pnmcs.JobSpec{Domain: "samegame", Width: 5, Height: 5, Colors: 3, BoardSeed: 3, Level: 2, Seed: 3, Memorize: true}
	inherited := runServiceJob(t, svc, spec)
	guided, err := pnmcs.RunWall(2, 2, pnmcs.ParallelConfig{
		Level: 2, Root: pnmcs.NewSameGameSized(5, 5, 3, 3), Seed: 3, Memorize: true,
		Evaluator: pnmcs.HeuristicEvaluatorName,
	})
	if err != nil {
		t.Fatal(err)
	}
	if inherited.Score != guided.Score || len(inherited.Sequence) != len(guided.Sequence) {
		t.Fatalf("inherited default %v/%d != solo guided %v/%d",
			inherited.Score, len(inherited.Sequence), guided.Score, len(guided.Sequence))
	}

	// The sentinel forces uniform playouts despite the service default.
	uspec := spec
	uspec.Evaluator = pnmcs.EvaluatorUniform
	uniform := runServiceJob(t, svc, uspec)
	solo, err := pnmcs.RunWall(2, 2, pnmcs.ParallelConfig{
		Level: 2, Root: pnmcs.NewSameGameSized(5, 5, 3, 3), Seed: 3, Memorize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Score != solo.Score || len(uniform.Sequence) != len(solo.Sequence) {
		t.Fatalf("uniform sentinel %v/%d != solo uniform %v/%d",
			uniform.Score, len(uniform.Sequence), solo.Score, len(solo.Sequence))
	}

	// The batcher must have seen the guided job's evaluations.
	if m := svc.Metrics(); m.Pool.EvalRequests == 0 {
		t.Fatalf("no evaluations batched: %+v", m.Pool)
	}
}

// TestFacadeCustomEvaluator registers an evaluator through the facade and
// runs it on both API surfaces (service job, one-shot RunWall): same name,
// same seed, same answer.
func TestFacadeCustomEvaluator(t *testing.T) {
	pnmcs.RegisterEvaluator("facade-test", func() pnmcs.Evaluator { return shortestFirst{} })
	found := false
	for _, name := range pnmcs.EvaluatorNames() {
		if name == "facade-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered evaluator not listed: %v", pnmcs.EvaluatorNames())
	}

	svc, err := pnmcs.New(pnmcs.WithSlots(1), pnmcs.WithPool(2, 2), pnmcs.WithEvalBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Shutdown(context.Background())

	st := runServiceJob(t, svc, pnmcs.JobSpec{
		Domain: "sudoku", Box: 2, Level: 2, Seed: 3, Memorize: true, Evaluator: "facade-test",
	})
	solo, err := pnmcs.RunWall(2, 2, pnmcs.ParallelConfig{
		Level: 2, Root: pnmcs.NewSudoku(2), Seed: 3, Memorize: true, Evaluator: "facade-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Score != solo.Score || len(st.Sequence) != len(solo.Sequence) {
		t.Fatalf("custom evaluator: service %v/%d != solo %v/%d",
			st.Score, len(st.Sequence), solo.Score, len(solo.Sequence))
	}

	// Unknown names are rejected at submission, not silently uniform.
	if _, err := svc.Submit(context.Background(), pnmcs.JobSpec{
		Domain: "sudoku", Box: 2, Level: 2, Seed: 3, Evaluator: "no-such-evaluator",
	}); err == nil {
		t.Fatal("unknown evaluator accepted")
	}
}

// shortestFirst weights each move by how few moves the position has —
// a deliberately arbitrary but pure custom evaluator.
type shortestFirst struct{}

func (shortestFirst) Evaluate(req pnmcs.EvalRequest, w []float64) []float64 {
	for range req.Moves {
		w = append(w, 1/float64(len(req.Moves)))
	}
	return w
}
