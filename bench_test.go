// Benchmarks regenerating the paper's evaluation: one benchmark per table
// (I–VI) and per figure (1, 2–5). Each benchmark executes the harness
// experiment at a reduced scale and reports, besides the usual ns/op, the
// quantities the paper's tables are about as custom metrics:
//
//	vsec        virtual seconds of simulated-cluster makespan
//	speedup     virtual-time speedup of the largest client count vs 1
//	rr_over_lm  Round-Robin time divided by Last-Minute time (table VI;
//	            > 1 means Last-Minute wins, the paper's claim)
//
// Absolute virtual times depend on the scaling calibration (see
// DESIGN.md §2); shapes — speedups, ratios — are the reproduction targets.
// Run with: go test -bench=. -benchmem
package pnmcs

import (
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/morpion"
	"repro/internal/mpi"
	"repro/internal/parallel"
)

// benchPreset is the reduced campaign used by the table benchmarks: 4D at
// levels 2/3 (standing in for the paper's 5D at 3/4), client counts 1, 8
// and 64, one seed per cell.
func benchPreset() harness.Preset {
	return harness.Preset{
		Scale: harness.ScaleCI, Variant: morpion.Var4D,
		LevelLo: 2, LevelHi: 3,
		CountsLo: []int{1, 8, 64},
		SeedsLo:  1,
		JobScale: 8000, UnitCost: mpi.DefaultUnitCost,
		Medians: parallel.PaperMedians, Fig1Level: 1,
	}
}

// reportSpeedup attaches the 64-vs-1 speedup of a table's measurements.
func reportSpeedup(b *testing.B, ms []*harness.Measurement, level int) {
	b.Helper()
	if sp := harness.Speedup(ms, level, 1, 64); sp > 0 {
		b.ReportMetric(sp, "speedup")
	}
}

// reportVsec attaches the virtual time of the largest-cluster cell.
func reportVsec(b *testing.B, ms []*harness.Measurement, clients int) {
	b.Helper()
	for _, m := range ms {
		if m.Clients == clients {
			b.ReportMetric(m.Times.MeanDuration().Seconds(), "vsec")
			return
		}
	}
}

// BenchmarkTableI regenerates table I: sequential first-move and rollout
// times at the low level (the high level is a lab-scale run; see
// cmd/experiments -scale lab).
func BenchmarkTableI_Sequential(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := harness.SequentialTimes(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates table II: Round-Robin first-move times
// against client count.
func BenchmarkTableII_RoundRobinFirstMove(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		res, err := harness.FirstMoveRoundRobin(p)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedup(b, res.Measurements, p.LevelLo)
		reportVsec(b, res.Measurements, 64)
	}
}

// BenchmarkTableIII regenerates table III: Round-Robin rollout (full game)
// times. Full games are ~25x a first move, so this sweeps a single client
// count per iteration.
func BenchmarkTableIII_RoundRobinRollout(b *testing.B) {
	p := benchPreset()
	p.CountsLo = []int{64}
	for i := 0; i < b.N; i++ {
		res, err := harness.RolloutRoundRobin(p)
		if err != nil {
			b.Fatal(err)
		}
		reportVsec(b, res.Measurements, 64)
	}
}

// BenchmarkTableIV regenerates table IV: Last-Minute first-move times.
func BenchmarkTableIV_LastMinuteFirstMove(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		res, err := harness.FirstMoveLastMinute(p)
		if err != nil {
			b.Fatal(err)
		}
		reportSpeedup(b, res.Measurements, p.LevelLo)
		reportVsec(b, res.Measurements, 64)
	}
}

// BenchmarkTableV regenerates table V: Last-Minute rollout times.
func BenchmarkTableV_LastMinuteRollout(b *testing.B) {
	p := benchPreset()
	p.CountsLo = []int{64}
	for i := 0; i < b.N; i++ {
		res, err := harness.RolloutLastMinute(p)
		if err != nil {
			b.Fatal(err)
		}
		reportVsec(b, res.Measurements, 64)
	}
}

// BenchmarkTableVI regenerates table VI: first-move times on the
// heterogeneous layouts, reporting how much slower Round-Robin is than
// Last-Minute (the paper's LM-wins claim holds when rr_over_lm > 1).
func BenchmarkTableVI_Heterogeneous(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		res, err := harness.Heterogeneous(p)
		if err != nil {
			b.Fatal(err)
		}
		var lm, rr time.Duration
		for _, m := range res.Measurements {
			if m.Spec == "16x4+16x2" {
				switch m.Algo {
				case parallel.LastMinute:
					lm = m.Times.MeanDuration()
				case parallel.RoundRobin:
					rr = m.Times.MeanDuration()
				}
			}
		}
		if lm > 0 {
			b.ReportMetric(float64(rr)/float64(lm), "rr_over_lm")
		}
	}
}

// BenchmarkFigure1 regenerates the figure-1 analogue: a sequential 5D
// search rendering the best grid found, reporting its score.
func BenchmarkFigure1_RecordGrid(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		out, err := harness.Figure1(p, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigures2to5 regenerates the protocol figures: traced runs of
// both dispatchers, validated against the paper's communication diagrams.
func BenchmarkFigures2to5_Protocol(b *testing.B) {
	p := benchPreset()
	for i := 0; i < b.N; i++ {
		if _, err := harness.ProtocolFigures(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWallCluster measures the native-goroutine transport on real
// cores (the actual-speedup path; virtual benchmarks above measure the
// simulated cluster).
func BenchmarkWallCluster_FirstMove(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := parallel.Config{
			Algo: parallel.LastMinute, Level: 2,
			Root: morpion.New(morpion.Var4D), Seed: uint64(i) + 1,
			Memorize: true, FirstMoveOnly: true,
		}
		if _, err := parallel.RunWall(4, 16, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
